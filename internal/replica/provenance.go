package replica

import (
	"math"

	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/provenance"
	"github.com/georep/georep/internal/replog"
)

// maxSwapProbes bounds the single-slot swap counterfactuals scored per
// epoch: each probe costs one delay estimate (plus a leader election
// when the write path is on), so the capture overhead stays a small
// constant multiple of the decision path's own estimate cost.
const maxSwapProbes = 4

// provTrivial captures provenance for the epochs that never reach the
// placement machinery: below-quorum (reason quorum-gated) and silent
// (reason steady). The chosen cost is the current placement's estimate
// when one was computed; there are no counterfactuals to rank.
func (m *Manager) provTrivial(reason provenance.Reason, p *PendingEpoch, ov *EpochOverride, dec *Decision) {
	if !m.cfg.Provenance {
		return
	}
	m.prov.Reset()
	m.prov.Reason = reason
	m.provGates(p, ov)
	m.prov.ReadMs = dec.EstimatedOldMs
	m.attributePerDC(p.micros, m.replicas)
	m.prov.Finalize(dec.EstimatedOldMs)
	m.provReady = true
	m.provEst.Observe(&m.prov)
}

// provDecide captures provenance for a full decision epoch: outcome
// reason, cost decomposition of the adopted placement, and the ranked
// counterfactuals — the rejected side of the migration gate, the
// service's solve frontier, and bounded single-slot swap probes.
// Runs after the decision is final so it reads, never steers.
func (m *Manager) provDecide(p *PendingEpoch, ov *EpochOverride, dec *Decision, gateOld, gateNew float64, proposed []int) {
	if !m.cfg.Provenance {
		return
	}
	m.prov.Reset()
	m.provGates(p, ov)
	m.prov.Held = dec.Held

	// Outcome reason, most specific first: a held migration explains
	// more than the displacement that proposed it, displacement more
	// than the migration it forced, and a drift-skip more than the
	// steady placement it preserved.
	switch {
	case dec.Held:
		m.prov.Reason = provenance.ReasonHeldBudget
	case dec.Displaced > 0:
		m.prov.Reason = provenance.ReasonDisplaced
	case dec.Migrate && dec.MovedReplicas > 0:
		m.prov.Reason = provenance.ReasonMigrated
	case ov != nil && ov.DriftSkipped:
		m.prov.Reason = provenance.ReasonDriftSkipped
	default:
		m.prov.Reason = provenance.ReasonSteady
	}

	// Cost decomposition of the placement the epoch ends on. When the
	// proposal was adopted m.replicas already equals it; otherwise the
	// previous placement survived and the "new" estimates describe the
	// road not taken.
	wf := m.cfg.WriteFraction
	chosen := gateOld
	if dec.Migrate {
		chosen = gateNew
		m.prov.ReadMs = dec.EstimatedNewMs
		if wf > 0 {
			m.prov.WriteMs = dec.WriteCostNewMs
		}
	} else {
		m.prov.ReadMs = dec.EstimatedOldMs
		if wf > 0 {
			m.prov.WriteMs = dec.WriteCostOldMs
		}
	}
	if dec.Migrate && dec.MovedReplicas > 0 {
		// Migration price in delay-equivalent milliseconds: the byte
		// cost of the move divided by the value of one millisecond of
		// access improvement at this epoch's demand (the same exchange
		// rate approveMigration trades at). Zero when the economics are
		// unconfigured — the gate then never charged for movement.
		if mg := m.cfg.Migration; mg.CostPerByte > 0 && mg.GainPerMsAccess > 0 && p.demand > 0 {
			m.prov.MigrateMs = float64(dec.MovedReplicas) * mg.ObjectBytes * mg.CostPerByte /
				(p.demand * mg.GainPerMsAccess)
		}
	}
	m.attributePerDC(p.micros, m.replicas)

	// Counterfactual 1: the losing side of the migration gate. Both
	// blended costs were already computed for the decision, so this is
	// free. A zero-move epoch has no losing side.
	if dec.MovedReplicas > 0 {
		if dec.Migrate {
			m.prov.AddCounterfactual(provenance.SourcePrevious, gateOld, p.prev)
		} else {
			m.prov.AddCounterfactual(provenance.SourceProposed, gateNew, proposed)
		}
	}
	// Counterfactuals 2..n: the group solve's scored frontier, when the
	// multi-object service drove this epoch.
	if ov != nil {
		for i := range ov.Frontier {
			f := &ov.Frontier[i]
			m.prov.AddCounterfactual(f.Source, f.CostMs, f.Replicas)
		}
	}
	// Counterfactuals n+1..: bounded swap probes around the adopted
	// placement.
	m.provSwaps(p.micros, chosen, wf)

	m.prov.Finalize(chosen)
	m.provReady = true
	m.provEst.Observe(&m.prov)
}

// provGates stamps the epoch's gating inputs: live SLO burn rate, how
// many summaries went missing, and — when the multi-object service
// drove the epoch — the leader's signature drift and the fleet
// capacity occupancy.
func (m *Manager) provGates(p *PendingEpoch, ov *EpochOverride) {
	if m.cfg.BurnRate != nil {
		m.prov.GateBurn = m.cfg.BurnRate()
	}
	m.prov.GateMissing = len(p.missing)
	if ov != nil {
		m.prov.GateDrift = ov.Drift
		m.prov.GateOccupancy = ov.Occupancy
	}
}

// provSwaps scores up to maxSwapProbes one-slot perturbations of the
// adopted placement: each probe replaces one replica with the nearest
// candidate DC not already in the placement and prices the result with
// the same blended objective the migration gate uses. These are the
// "what if one site were different" alternatives an operator asks for
// first, and they calibrate the regret estimate even on epochs where
// the solver itself scored nothing else.
//
// The read term rides the per-micro cache attributePerDC just filled:
// for a one-slot swap, each micro pays min(its retained best — or the
// runner-up when its nearest was the slot swapped away — and its
// distance to the stand-in), so a probe costs one distance per micro
// instead of a full placement estimate.
func (m *Manager) provSwaps(micros []cluster.Micro, chosen, wf float64) {
	adopted := m.replicas
	k := len(adopted)
	n := len(m.provW)
	if len(m.candidates) <= k || n == 0 || m.provMass == 0 {
		return // no unused candidate to swap in, or nothing to score with
	}
	if cap(m.swapScratch) < k {
		m.swapScratch = make([]int, k)
	}
	swap := m.swapScratch[:k]
	dims := len(m.provCent) / n
	probes := k
	if probes > maxSwapProbes {
		probes = maxSwapProbes
	}
	for j := 0; j < probes; j++ {
		// Nearest unused candidate to the replica being displaced: the
		// most plausible stand-in, hence the tightest counterfactual.
		base := m.coords[adopted[j]]
		alt, bestD := -1, math.Inf(1)
		for _, c := range m.candidates {
			used := false
			for _, rep := range adopted {
				if rep == c {
					used = true
					break
				}
			}
			if used {
				continue
			}
			if d := m.coords[c].Pos.Dist(base.Pos) + m.coords[c].Height; d < bestD {
				bestD, alt = d, c
			}
		}
		if alt < 0 {
			return
		}
		copy(swap, adopted)
		swap[j] = alt
		altC := m.coords[alt]
		var total float64
		for i := 0; i < n; i++ {
			retained := m.provBest[i]
			if m.provOwner[i] == j {
				retained = m.provBest2[i]
			}
			if d := altC.Pos.Dist(m.provCent[i*dims:(i+1)*dims]) + altC.Height; d < retained {
				retained = d
			}
			total += m.provW[i] * retained
		}
		cost := total / m.provMass
		if wf > 0 {
			read := cost
			leader := replog.ChooseLeader(m.cfg.LeaderPolicy, swap, micros, m.coords)
			w := replog.WriteMs(leader, micros, m.coords) + replog.FanoutMs(leader, swap, m.coords)
			cost = (1-wf)*read + wf*w
		}
		m.prov.AddCounterfactual(provenance.SourceSwap, cost, swap)
	}
}

// attributePerDC decomposes the placement's serving cost by replica DC:
// each micro-cluster's weight and delay accrue to the replica that
// would serve it (its nearest), yielding per-DC demand shares and mean
// delays that sum back to the read term. Scratch-backed; appends into
// m.prov.PerDC.
//
// The same pass fills the per-micro cache the swap probes reuse —
// flattened centroids, weights, each micro's best and runner-up replica
// cost and owning slot — so capture touches every micro-replica pair
// exactly once per epoch.
func (m *Manager) attributePerDC(micros []cluster.Micro, replicas []int) {
	k := len(replicas)
	m.provW = m.provW[:0]
	m.provMass = 0
	if k == 0 || len(micros) == 0 {
		return
	}
	if cap(m.dcwScratch) < k {
		m.dcwScratch = make([]float64, k)
		m.dcdScratch = make([]float64, k)
	}
	ws, ds := m.dcwScratch[:k], m.dcdScratch[:k]
	for i := range ws {
		ws[i], ds[i] = 0, 0
	}
	if cap(m.provBest) < len(micros) {
		m.provBest = make([]float64, len(micros))
		m.provBest2 = make([]float64, len(micros))
		m.provOwner = make([]int, len(micros))
	}
	m.provBest, m.provBest2, m.provOwner = m.provBest[:0], m.provBest2[:0], m.provOwner[:0]
	m.provCent = m.provCent[:0]
	var mass float64
	for i := range micros {
		w := micros[i].Weight
		if w == 0 {
			w = float64(micros[i].Count)
		}
		if w == 0 {
			continue
		}
		if d := micros[i].Sum.Dim(); len(m.estScratch) != d {
			m.estScratch = make([]float64, d)
		}
		micros[i].CentroidInto(m.estScratch)
		bestJ, best, best2 := -1, math.Inf(1), math.Inf(1)
		for j, rep := range replicas {
			if rep < 0 || rep >= len(m.coords) {
				continue
			}
			d := m.coords[rep].Pos.Dist(m.estScratch) + m.coords[rep].Height
			if d < best {
				best2 = best
				best, bestJ = d, j
			} else if d < best2 {
				best2 = d
			}
		}
		if bestJ < 0 {
			continue
		}
		ws[bestJ] += w
		ds[bestJ] += w * best
		mass += w
		m.provCent = append(m.provCent, m.estScratch...)
		m.provW = append(m.provW, w)
		m.provBest = append(m.provBest, best)
		m.provBest2 = append(m.provBest2, best2)
		m.provOwner = append(m.provOwner, bestJ)
	}
	m.provMass = mass
	if mass == 0 {
		return
	}
	for j, rep := range replicas {
		if ws[j] == 0 {
			continue
		}
		m.prov.PerDC = append(m.prov.PerDC, provenance.DCShare{
			Node:   rep,
			Weight: ws[j] / mass,
			MeanMs: ds[j] / ws[j],
		})
	}
}

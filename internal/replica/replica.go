// Package replica implements the runtime side of the paper's system: the
// per-replica access summarizers (§III-B), the coordinator that
// periodically collects summaries and decides new replica locations
// (§III-C, Algorithm 1), the migration-benefit threshold, and the
// dynamic adjustment of the replication degree k.
package replica

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/vec"
)

// Server is the state a data center holding one replica keeps: a bounded
// micro-cluster summary of the clients that accessed it recently.
//
// Two recency mechanisms are available. The default (NewServer) applies
// exponential decay at every epoch boundary — cheap, approximate. The
// windowed variant (NewWindowedServer) keeps CluStream pyramidal
// snapshots and exports exactly the accesses of the last W epochs —
// slightly costlier, exact.
type Server struct {
	node     int
	sum      *cluster.Summarizer
	win      *cluster.WindowedSummarizer
	shards   *cluster.Sharded
	winEpoch float64 // virtual clock: one unit per epoch (windowed mode)
	horizon  float64 // window length in epochs (windowed mode)
	seq      int     // round-robin shard key for id-less single records
	// accesses is atomic: sharded servers accept RecordBatch from
	// concurrent goroutines.
	accesses atomic.Int64
}

// NewServer creates the summarizer state for a replica hosted at the
// given node with a budget of m micro-clusters over dims-dimensional
// client coordinates, using exponential-decay recency.
func NewServer(node, m, dims int) (*Server, error) {
	s, err := cluster.NewSummarizer(m, dims)
	if err != nil {
		return nil, err
	}
	return &Server{node: node, sum: s}, nil
}

// NewWindowedServer creates a server whose summaries cover exactly the
// last windowEpochs epochs via CluStream pyramidal snapshots.
func NewWindowedServer(node, m, dims, windowEpochs int) (*Server, error) {
	if windowEpochs <= 0 {
		return nil, fmt.Errorf("replica: windowEpochs must be positive, got %d", windowEpochs)
	}
	w, err := cluster.NewWindowedSummarizer(m, dims)
	if err != nil {
		return nil, err
	}
	return &Server{node: node, win: w, horizon: float64(windowEpochs)}, nil
}

// NewShardedServer creates a server whose summarizer is partitioned
// across a power-of-two number of client-hash shards (see
// cluster.Sharded): batched ingest locks only the touched shards, and
// the shards are merged back down to the m-cluster budget at export
// time. Recency uses exponential decay, as with NewServer.
func NewShardedServer(node, shards, m, dims int) (*Server, error) {
	sh, err := cluster.NewSharded(shards, m, dims)
	if err != nil {
		return nil, err
	}
	return &Server{node: node, shards: sh}, nil
}

// Node returns the data-center node hosting this replica.
func (s *Server) Node() int { return s.node }

// Record folds one client access into the summary. weight is the data
// volume exchanged (paper: "the overall amount of data exchanged with
// the users").
func (s *Server) Record(clientPos vec.Vec, weight float64) error {
	var err error
	switch {
	case s.win != nil:
		err = s.win.Observe(clientPos, weight)
	case s.shards != nil:
		// The id-less single-record path spreads observations round-robin;
		// any partition preserves the summary's additive totals.
		err = s.shards.Observe(s.seq, clientPos, weight)
		s.seq++
	default:
		err = s.sum.Observe(clientPos, weight)
	}
	if err == nil {
		s.accesses.Add(1)
	}
	return err
}

// RecordBatch folds a batch of accesses into the summary: clients[i]
// accessed with weights[i], reading positions from pos[clients[i]]. A
// nil weights slice means unit weights. On a sharded server this is the
// lock-once-per-shard, allocation-free hot path; on decay and windowed
// servers it degenerates to a loop over Record's summarizer, still
// without allocating.
func (s *Server) RecordBatch(clients []int, pos []vec.Vec, weights []float64) error {
	if weights != nil && len(weights) != len(clients) {
		return fmt.Errorf("replica: batch of %d clients with %d weights", len(clients), len(weights))
	}
	if s.shards != nil {
		if err := s.shards.ObserveBatch(clients, pos, weights); err != nil {
			return err
		}
		s.accesses.Add(int64(len(clients)))
		return nil
	}
	for i, c := range clients {
		if c < 0 || c >= len(pos) {
			return fmt.Errorf("replica: client %d outside position table of %d", c, len(pos))
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		var err error
		if s.win != nil {
			err = s.win.Observe(pos[c], w)
		} else {
			err = s.sum.Observe(pos[c], w)
		}
		if err != nil {
			return err
		}
		s.accesses.Add(1)
	}
	return nil
}

// Export returns a copy of the recency-scoped micro-clusters — what the
// server ships to the coordinator.
func (s *Server) Export() ([]cluster.Micro, error) {
	return s.ExportInto(nil)
}

// ExportInto is Export reusing dst's backing (micro structs and their
// vectors) where possible. The windowed and sharded paths still build
// fresh summaries — their merge passes need owned storage — but the
// plain path, one summarizer per object as a multi-object fleet runs,
// re-allocates nothing in steady state.
func (s *Server) ExportInto(dst []cluster.Micro) ([]cluster.Micro, error) {
	if s.win != nil {
		return s.win.Window(s.winEpoch, s.horizon)
	}
	if s.shards != nil {
		return s.shards.Summary(), nil
	}
	return s.sum.ClustersInto(dst), nil
}

// ExportEncoded returns the gob wire form of the summary, whose length is
// the per-epoch bandwidth cost of the online approach.
func (s *Server) ExportEncoded() ([]byte, error) {
	ms, err := s.Export()
	if err != nil {
		return nil, err
	}
	return cluster.EncodeMicros(ms)
}

// Accesses returns the number of accesses recorded since creation.
func (s *Server) Accesses() int64 { return s.accesses.Load() }

// Decay marks an epoch boundary. In decay mode the summary ages by
// factor (1 keeps everything, smaller forgets faster); in windowed mode
// a snapshot is taken and the virtual clock advances, the factor is
// ignored.
func (s *Server) Decay(factor float64) error {
	if s.win != nil {
		if err := s.win.Snapshot(s.winEpoch); err != nil {
			return err
		}
		s.winEpoch++
		return nil
	}
	if s.shards != nil {
		return s.shards.Decay(factor)
	}
	return s.sum.Decay(factor)
}

// MigrationPolicy gates replica migration on expected benefit (§III-C:
// "our approach carries out data migration only when the gain in the
// quality of service compared to the migration cost is higher than a
// certain threshold").
type MigrationPolicy struct {
	// MinRelativeGain is the minimum fractional reduction in estimated
	// mean delay required to migrate, e.g. 0.05 for 5%.
	MinRelativeGain float64
	// CostPerByte is the monetary cost of moving one byte between data
	// centers (the paper cites ~$0.1/GB). Zero disables the economic
	// test.
	CostPerByte float64
	// GainPerMsAccess is the monetary value of shaving one millisecond
	// off one access. Only meaningful with CostPerByte > 0.
	GainPerMsAccess float64
	// ObjectBytes is the replicated object's size, charged once per
	// newly created replica. Only meaningful with CostPerByte > 0.
	ObjectBytes float64
}

// Validate checks the policy.
func (p MigrationPolicy) Validate() error {
	if p.MinRelativeGain < 0 || p.MinRelativeGain >= 1 {
		return fmt.Errorf("replica: MinRelativeGain %v out of [0,1)", p.MinRelativeGain)
	}
	if p.CostPerByte < 0 || p.GainPerMsAccess < 0 || p.ObjectBytes < 0 {
		return fmt.Errorf("replica: negative economics in policy %+v", p)
	}
	if p.CostPerByte > 0 && (p.GainPerMsAccess == 0 || p.ObjectBytes == 0) {
		return fmt.Errorf("replica: CostPerByte set but GainPerMsAccess/ObjectBytes missing")
	}
	return nil
}

// KPolicy adapts the replication degree to demand (§III-C: "adjustment is
// needed when it is desirable to create more replicas as the demand of an
// object increases or to discard replicas as the demand decreases").
type KPolicy struct {
	// Min and Max bound k. Max also must not exceed the candidate count.
	Min, Max int
	// GrowAbove adds a replica when epoch demand (total access weight)
	// exceeds this; zero disables growth.
	GrowAbove float64
	// ShrinkBelow removes a replica when epoch demand falls below this;
	// zero disables shrinking.
	ShrinkBelow float64
}

// Validate checks the policy against the initial k.
func (p KPolicy) Validate(k int) error {
	if p.Min <= 0 || p.Max < p.Min {
		return fmt.Errorf("replica: invalid k range [%d,%d]", p.Min, p.Max)
	}
	if k < p.Min || k > p.Max {
		return fmt.Errorf("replica: initial k=%d outside [%d,%d]", k, p.Min, p.Max)
	}
	if p.GrowAbove < 0 || p.ShrinkBelow < 0 {
		return fmt.Errorf("replica: negative demand thresholds")
	}
	if p.GrowAbove > 0 && p.ShrinkBelow > p.GrowAbove {
		return fmt.Errorf("replica: ShrinkBelow %v exceeds GrowAbove %v", p.ShrinkBelow, p.GrowAbove)
	}
	return nil
}

// Decision reports what the coordinator concluded for one epoch.
type Decision struct {
	// NewReplicas is the placement after the decision (unchanged when
	// Migrate is false).
	NewReplicas []int
	// Proposed is the placement macro-clustering suggested, whether or
	// not it was adopted.
	Proposed []int
	// Migrate reports whether the proposal was adopted.
	Migrate bool
	// K is the replication degree after demand adaptation.
	K int
	// EstimatedOldMs and EstimatedNewMs are summary-weighted mean delays
	// of the old and proposed placements.
	EstimatedOldMs float64
	EstimatedNewMs float64
	// MovedReplicas is how many locations the proposal changes.
	MovedReplicas int
	// CollectedBytes is the wire size of the micro-cluster summaries the
	// coordinator consumed this epoch.
	CollectedBytes int
	// Degraded reports that at least one replica's summary could not be
	// collected this epoch and a stale (or no) view was used instead.
	Degraded bool
	// MissingSummaries lists the replicas that were unreachable.
	MissingSummaries []int
	// QuorumOK reports whether enough fresh summaries arrived to permit
	// k adaptation and migration (see Config.Quorum). When false the
	// placement is guaranteed unchanged.
	QuorumOK bool
	// Held reports that an otherwise-approved migration was not adopted
	// because Config.HoldMigrations answered true — the SLO error
	// budget is exhausted and optional data movement is deferred.
	Held bool
	// Displaced is how many replicas of this epoch's placement were
	// pushed off their preferred data center by per-DC capacity
	// accounting (multi-object service only; zero otherwise).
	Displaced int
	// Leader is the write-path leader DC of the adopted placement, or
	// -1 when the write path is disabled (Config.WriteFraction == 0).
	Leader int
	// WriteCostOldMs and WriteCostNewMs are the write-path costs
	// (demand-weighted client→leader delay plus leader→follower fanout)
	// of the old and proposed placements. Zero when the write path is
	// disabled. The migration gate compares the blended read/write
	// costs, not EstimatedOldMs/NewMs alone, when WriteFraction > 0.
	WriteCostOldMs float64
	WriteCostNewMs float64
}

// EstimateMeanDelay returns the access-weighted mean predicted delay of
// serving the summarized populations from the given replica set: each
// micro-cluster is served by the replica closest to its centroid in
// coordinate space. It is the objective the coordinator optimizes,
// computable from summaries alone.
func EstimateMeanDelay(micros []cluster.Micro, replicas []int, coords []coord.Coordinate) (float64, error) {
	var cent vec.Vec
	return estimateMeanDelayScratch(&cent, micros, replicas, coords)
}

// estimateMeanDelayScratch is EstimateMeanDelay computing each centroid
// into a caller-owned scratch vector: the estimate runs twice per epoch
// per object, and Centroid's per-micro allocation was a measurable slice
// of a fleet epoch.
func estimateMeanDelayScratch(cent *vec.Vec, micros []cluster.Micro, replicas []int, coords []coord.Coordinate) (float64, error) {
	if len(replicas) == 0 {
		return 0, fmt.Errorf("replica: no replicas to estimate against")
	}
	var total, mass float64
	for i := range micros {
		w := micros[i].Weight
		if w == 0 {
			w = float64(micros[i].Count)
		}
		if w == 0 {
			continue
		}
		if d := micros[i].Sum.Dim(); len(*cent) != d {
			*cent = vec.New(d)
		}
		micros[i].CentroidInto(*cent)
		c := *cent
		best := math.Inf(1)
		for _, rep := range replicas {
			if rep < 0 || rep >= len(coords) {
				return 0, fmt.Errorf("replica: replica node %d out of coordinate range", rep)
			}
			// Predicted serving latency includes the replica's height
			// (access-link delay); the clients' own heights are unknown
			// from the summary but shift every placement equally.
			if d := coords[rep].Pos.Dist(c) + coords[rep].Height; d < best {
				best = d
			}
		}
		total += w * best
		mass += w
	}
	if mass == 0 {
		return 0, nil
	}
	return total / mass, nil
}

// ProposePlacement runs Algorithm 1: weighted k-means over the collected
// micro-clusters, then nearest distinct candidate per macro centroid
// (heaviest first), topping up from the global centroid if needed. It is
// exported for coordinators that collect summaries over the network (the
// georepd daemon) rather than through a Manager.
func ProposePlacement(r *rand.Rand, micros []cluster.Micro, k int, candidates []int, coords []coord.Coordinate) ([]int, error) {
	return ProposePlacementOpt(r, micros, k, candidates, coords, cluster.Options{})
}

// ProposePlacementOpt is ProposePlacement with explicit k-means options:
// parallelism for the macro-clustering assignment step and a metrics
// registry for iteration counters. The proposal is identical at any
// parallelism level.
func ProposePlacementOpt(r *rand.Rand, micros []cluster.Micro, k int, candidates []int, coords []coord.Coordinate, opt cluster.Options) ([]int, error) {
	out, _, err := ProposePlacementResult(r, micros, k, candidates, coords, opt)
	return out, err
}

// ProposePlacementResult is ProposePlacementOpt returning also the
// macro-clustering result backing the proposal, for callers that reuse
// the centroids — the multi-object service seeds next epoch's
// warm-started solve from them. The result aliases opt.Scratch when one
// is set; copy centroids that must outlive the next solve.
func ProposePlacementResult(r *rand.Rand, micros []cluster.Micro, k int, candidates []int, coords []coord.Coordinate, opt cluster.Options) ([]int, *cluster.KMeansResult, error) {
	res, err := cluster.MacroClusterOpt(r, micros, k, opt)
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(res.Centroids))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if res.Weights[order[j]] > res.Weights[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	used := make(map[int]bool, k)
	var out []int
	pickNearest := func(target vec.Vec) int {
		best, bestD := -1, math.Inf(1)
		for _, c := range candidates {
			if used[c] {
				continue
			}
			// Height included: avoid candidates behind slow access links.
			if d := coords[c].Pos.Dist(target) + coords[c].Height; d < bestD {
				best, bestD = c, d
			}
		}
		return best
	}
	for _, ci := range order {
		if len(out) == k {
			break
		}
		if c := pickNearest(res.Centroids[ci]); c >= 0 {
			used[c] = true
			out = append(out, c)
		}
	}
	if len(out) < k {
		// Fewer distinct centroids than k: place remaining replicas near
		// the overall demand centroid.
		var pts []vec.Vec
		var ws []float64
		for i := range micros {
			pts = append(pts, micros[i].Centroid())
			w := micros[i].Weight
			if w == 0 {
				w = float64(micros[i].Count)
			}
			ws = append(ws, w)
		}
		global := vec.WeightedMean(pts, ws)
		for len(out) < k {
			c := pickNearest(global)
			if c < 0 {
				break
			}
			used[c] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("replica: no candidates available")
	}
	return out, res, nil
}

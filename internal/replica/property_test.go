package replica

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/vec"
)

// Property: across arbitrary access streams and epoch schedules, the
// manager's invariants hold — replicas are always distinct candidates,
// |replicas| == k, and k stays within the policy bounds.
func TestQuickManagerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))

		// Random candidate geometry.
		nCand := 4 + r.Intn(6)
		nodes := nCand + 5
		coords := make([]coord.Coordinate, nodes)
		for i := range coords {
			coords[i] = coord.Coordinate{
				Pos:    vec.Of(r.NormFloat64()*100, r.NormFloat64()*100),
				Height: r.Float64() * 5,
			}
		}
		candidates := make([]int, nCand)
		for i := range candidates {
			candidates[i] = i
		}
		kMax := 1 + r.Intn(nCand)
		kMin := 1 + r.Intn(kMax)
		k := kMin + r.Intn(kMax-kMin+1)
		cfg := Config{
			K: k, M: 1 + r.Intn(8), Dims: 2,
			Migration: MigrationPolicy{MinRelativeGain: r.Float64() * 0.5},
			KPolicy: KPolicy{
				Min: kMin, Max: kMax,
				GrowAbove:   10 + r.Float64()*100,
				ShrinkBelow: r.Float64() * 10,
			},
			DecayFactor: 0.1 + r.Float64()*0.9,
		}
		m, err := NewManager(cfg, candidates, coords, nil)
		if err != nil {
			return false
		}

		check := func() bool {
			reps := m.Replicas()
			if len(reps) != m.K() {
				return false
			}
			if m.K() < kMin || m.K() > kMax {
				return false
			}
			seen := make(map[int]bool, len(reps))
			for _, rep := range reps {
				if rep < 0 || rep >= nCand || seen[rep] {
					return false
				}
				seen[rep] = true
			}
			return true
		}

		for epoch := 0; epoch < 4; epoch++ {
			accesses := r.Intn(200)
			for a := 0; a < accesses; a++ {
				client := coord.Coordinate{
					Pos: vec.Of(r.NormFloat64()*100, r.NormFloat64()*100),
				}
				if _, err := m.Record(client, r.Float64()*3); err != nil {
					return false
				}
			}
			if _, err := m.EndEpoch(rand.New(rand.NewSource(seed + int64(epoch)))); err != nil {
				return false
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a proposed placement never worsens the summary-estimated
// delay relative to what EndEpoch adopts — i.e. adopted migrations are
// justified by their own estimates.
func TestQuickAdoptedMigrationsEstimateJustified(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		coords := lineCoords(0, 40, 80, 120, 160)
		m, err := NewManager(Config{
			K: 2, M: 4, Dims: 2,
			Migration: MigrationPolicy{MinRelativeGain: 0.05},
		}, []int{0, 1, 2, 3, 4}, coords, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			client := coord.Coordinate{Pos: vec.Of(r.Float64()*160, 0)}
			if _, err := m.Record(client, 1); err != nil {
				return false
			}
		}
		dec, err := m.EndEpoch(rand.New(rand.NewSource(seed + 7)))
		if err != nil {
			return false
		}
		if dec.Migrate && dec.MovedReplicas > 0 {
			// An adopted move must improve the estimate by the bar.
			if dec.EstimatedNewMs >= dec.EstimatedOldMs {
				return false
			}
			rel := (dec.EstimatedOldMs - dec.EstimatedNewMs) / dec.EstimatedOldMs
			if rel < 0.05-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

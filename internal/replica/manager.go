package replica

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/provenance"
	"github.com/georep/georep/internal/replog"
	"github.com/georep/georep/internal/trace"
	"github.com/georep/georep/internal/vec"
)

// Config parameterizes a Manager.
type Config struct {
	// K is the initial replication degree.
	K int
	// M is the micro-cluster budget per replica (paper symbol m).
	M int
	// Dims is the coordinate dimensionality.
	Dims int
	// Migration gates placement changes; the zero value migrates on any
	// estimated improvement.
	Migration MigrationPolicy
	// KPolicy adapts the replication degree; the zero value pins k.
	KPolicy KPolicy
	// DecayFactor ages summaries at each epoch end (0 < f <= 1); zero
	// defaults to 0.5 so summaries track recent accesses.
	DecayFactor float64
	// WindowEpochs, when positive, switches the per-replica summaries
	// from exponential decay to exact CluStream windows covering the
	// last WindowEpochs epochs; DecayFactor is then ignored.
	WindowEpochs int
	// IngestShards, when > 1, partitions each replica's summarizer
	// across that many client-hash shards (power of two) so batched
	// ingest locks per shard instead of per server; summaries are merged
	// back down to M clusters at collection time. Incompatible with
	// WindowEpochs: the exact-window summarizer is not sharded.
	IngestShards int
	// Quorum is the fraction of replicas whose fresh summaries the
	// coordinator requires before it will adapt k or migrate (default
	// 0.5). Below quorum the epoch still completes — reusing last-known
	// summaries with staleness decay for the estimate — but the decision
	// is marked degraded and no placement change is committed.
	Quorum float64
	// Parallelism caps the worker goroutines of the epoch-end
	// macro-clustering (0 = GOMAXPROCS, 1 = serial). Decisions are
	// identical at any setting.
	Parallelism int
	// Metrics, when non-nil, receives the manager's runtime counters and
	// histograms (see the Observability section of README.md for the
	// metric names). A nil registry disables instrumentation at the cost
	// of one nil check per update.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records one span tree per epoch: the epoch
	// root, a collect span per replica (errors naming unreachable
	// nodes), the k-means macro-clustering, and the migration decision.
	// Degraded, below-quorum, and migrating epochs are marked anomalous
	// so the flight recorder pins their complete trees.
	Tracer *trace.Tracer
	// Ledger, when non-nil, receives one durable record per completed
	// epoch carrying the decision's full inputs and outcome, so an
	// offline auditor can replay it (see internal/audit). An append
	// failure fails the epoch: decision provenance is not best-effort.
	Ledger *ledger.Ledger
	// ObjectID and Class identify the object this manager places inside
	// a multi-object fleet (see internal/placement.Service); both are
	// stamped into every ledger record so the offline audit can group
	// regret per object and per class. Leave empty for single-object
	// deployments — records then keep their version-1 byte encoding.
	ObjectID string
	Class    string
	// WriteFraction is the expected write share of the workload in
	// [0, 1]. When positive, the migration gate blends the read
	// objective with a write-path cost — the demand-weighted
	// client→leader delay plus the leader→follower replication fanout —
	// and every decision names the placement's write leader. Zero (the
	// default) disables the write path entirely: the decision sequence
	// is byte-identical to a read-only manager.
	WriteFraction float64
	// LeaderPolicy picks the write leader inside a placement when
	// WriteFraction > 0: demand-weighted centroid (default) or lowest
	// replication fanout. See replog.LeaderPolicy.
	LeaderPolicy replog.LeaderPolicy
	// HoldMigrations, when non-nil, is consulted before adopting an
	// approved (non-forced) migration; answering true holds the
	// placement in place. The intended signal is measured SLO burn
	// (slo.Engine.BudgetExhausted): when the error budget is gone, the
	// service stops spending availability on optional data movement.
	// Forced reshapes (k changes, capacity displacement) still apply.
	HoldMigrations func() bool
	// Provenance captures a per-epoch decision provenance record: the
	// chosen placement's cost decomposition, the counterfactual
	// placements the epoch actually scored with their deltas, and the
	// outcome reason with its gating inputs. The record rides the
	// ledger as codec v3 when Ledger is set, and feeds the live
	// provenance_* regret gauges when Metrics is set. Capture is
	// bounded and allocation-free in steady state; off (the default)
	// the epoch path and the ledger bytes are identical to a
	// pre-provenance manager.
	Provenance bool
	// BurnRate, when non-nil, supplies the live SLO burn rate recorded
	// as a provenance gating input alongside HoldMigrations' verdict
	// (slo.Engine.MaxBurnRate is the intended source). Only consulted
	// when Provenance is on.
	BurnRate func() float64
}

// newServer builds a server in the configured recency/sharding mode.
func (c Config) newServer(node int) (*Server, error) {
	if c.WindowEpochs > 0 {
		return NewWindowedServer(node, c.M, c.Dims, c.WindowEpochs)
	}
	if c.IngestShards > 1 {
		return NewShardedServer(node, c.IngestShards, c.M, c.Dims)
	}
	return NewServer(node, c.M, c.Dims)
}

func (c *Config) fillDefaults() {
	if c.DecayFactor == 0 {
		c.DecayFactor = 0.5
	}
	if c.Quorum == 0 {
		c.Quorum = 0.5
	}
	if c.KPolicy.Min == 0 && c.KPolicy.Max == 0 {
		c.KPolicy.Min, c.KPolicy.Max = c.K, c.K
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("replica: K must be positive, got %d", c.K)
	}
	if c.M <= 0 {
		return fmt.Errorf("replica: M must be positive, got %d", c.M)
	}
	if c.Dims <= 0 {
		return fmt.Errorf("replica: Dims must be positive, got %d", c.Dims)
	}
	if err := c.Migration.Validate(); err != nil {
		return err
	}
	if err := c.KPolicy.Validate(c.K); err != nil {
		return err
	}
	if c.DecayFactor < 0 || c.DecayFactor > 1 {
		return fmt.Errorf("replica: DecayFactor %v out of [0,1]", c.DecayFactor)
	}
	if c.WindowEpochs < 0 {
		return fmt.Errorf("replica: WindowEpochs must be non-negative, got %d", c.WindowEpochs)
	}
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("replica: Quorum %v out of [0,1]", c.Quorum)
	}
	if c.IngestShards < 0 {
		return fmt.Errorf("replica: IngestShards must be non-negative, got %d", c.IngestShards)
	}
	if c.IngestShards > 1 && c.IngestShards&(c.IngestShards-1) != 0 {
		return fmt.Errorf("replica: IngestShards %d must be a power of two", c.IngestShards)
	}
	if c.IngestShards > 1 && c.WindowEpochs > 0 {
		return fmt.Errorf("replica: IngestShards and WindowEpochs are mutually exclusive")
	}
	if c.WriteFraction < 0 || c.WriteFraction > 1 {
		return fmt.Errorf("replica: WriteFraction %v out of [0,1]", c.WriteFraction)
	}
	return nil
}

// managerMetrics holds the manager's metric handles, resolved once at
// construction so the hot Route/Record path does no map lookups. The
// zero value (nil handles) is a no-op.
type managerMetrics struct {
	accesses     *metrics.Counter
	accessWeight *metrics.Gauge
	routeMs      *metrics.Histogram
	epochs       *metrics.Counter
	migrations   *metrics.Counter
	moved        *metrics.Counter
	summaryBytes *metrics.Counter
	summaryHist  *metrics.Histogram
	k            *metrics.Gauge
	estOldMs     *metrics.Gauge
	estNewMs     *metrics.Gauge
	estGainMs    *metrics.Gauge
	degraded     *metrics.Counter
	missing      *metrics.Counter
	quorumBlock  *metrics.Counter
	held         *metrics.Counter
	leader       *metrics.Gauge
	writeOldMs   *metrics.Gauge
	writeNewMs   *metrics.Gauge
}

func newManagerMetrics(r *metrics.Registry) managerMetrics {
	return managerMetrics{
		accesses:     r.Counter("replica_accesses_total"),
		accessWeight: r.Gauge("replica_access_weight_total"),
		routeMs:      r.Histogram("replica_route_predicted_ms", metrics.LatencyBuckets()),
		epochs:       r.Counter("replica_epochs_total"),
		migrations:   r.Counter("replica_migrations_total"),
		moved:        r.Counter("replica_moved_replicas_total"),
		summaryBytes: r.Counter("replica_summary_bytes_total"),
		summaryHist:  r.Histogram("replica_summary_bytes_per_epoch", metrics.SizeBuckets()),
		k:            r.Gauge("replica_k"),
		estOldMs:     r.Gauge("replica_estimated_old_ms"),
		estNewMs:     r.Gauge("replica_estimated_new_ms"),
		estGainMs:    r.Gauge("replica_estimated_gain_ms"),
		degraded:     r.Counter("replica_degraded_epochs_total"),
		missing:      r.Counter("replica_missing_summaries_total"),
		quorumBlock:  r.Counter("replica_quorum_blocked_migrations_total"),
		held:         r.Counter("replica_migrations_held_total"),
		leader:       r.Gauge("replica_write_leader"),
		writeOldMs:   r.Gauge("replica_write_cost_old_ms"),
		writeNewMs:   r.Gauge("replica_write_cost_new_ms"),
	}
}

// Manager coordinates the replicas of one data object (or object group):
// it routes clients to their closest replica, owns the per-replica
// summaries, and at each epoch end runs the collection/decision cycle.
// It is not safe for concurrent use; drive it from one goroutine (the
// simulator) or guard it externally (the TCP daemon does).
type Manager struct {
	cfg        Config
	candidates []int
	coords     []coord.Coordinate
	// positions aliases coords' position vectors, indexed by node, so
	// the batch ingest path resolves a client id to its coordinate with
	// one slice read and no allocation.
	positions  []vec.Vec
	k          int
	servers    map[int]*Server
	replicas   []int
	epoch      int
	migrations int
	met        managerMetrics
	// lastKnown caches each replica's most recent successfully collected
	// summary so an unreachable replica can still contribute a stale,
	// staleness-decayed view to the epoch decision.
	lastKnown map[int]staleSummary
	// observedMs / observedAccesses hold the measured mean access delay
	// the caller reported for the current epoch (see RecordObserved);
	// consumed and reset by EndEpochDegraded when writing the ledger.
	observedMs       float64
	observedAccesses int64

	// Epoch scratch, reused across epochs so the collect/decide cycle
	// stops re-allocating its working set every cycle: the aggregated
	// micro view, the previous-placement copy, the ledger's
	// candidate-coordinate table, and the k-means working memory. All of
	// it is dead between epochs — the ledger serializes synchronously
	// and Decision never aliases scratch.
	microScratch []cluster.Micro
	prevScratch  []int
	coordScratch []coord.Coordinate
	estScratch   vec.Vec
	kmScratch    cluster.KMeansScratch

	// Provenance capture state (cfg.Provenance). prov is the one decision
	// record, reused every epoch; provReady marks that the just-completed
	// epoch filled it, so the deferred ledger append knows whether to
	// attach the v3 tail. The remaining fields are capture scratch: the
	// swap-probe placement and the per-DC attribution accumulators.
	prov        provenance.Record
	provReady   bool
	provEst     *provenance.Estimator
	swapScratch []int
	dcwScratch  []float64
	dcdScratch  []float64
	// Per-micro cache filled once per captured epoch by attributePerDC
	// and reused by the swap probes: flattened centroids, weights, the
	// nearest adopted replica's cost and slot, and the runner-up cost
	// (what a micro pays if its nearest is swapped away).
	provCent  []float64
	provW     []float64
	provBest  []float64
	provBest2 []float64
	provOwner []int
	provMass  float64
}

// PendingEpoch is the opaque collect-phase state between BeginEpoch and
// CompleteEpoch. It aliases manager scratch: a pending epoch is valid
// only until the matching CompleteEpoch (which must always be called —
// it closes the epoch's trace span and ledger record) or the next
// BeginEpoch, whichever comes first.
type PendingEpoch struct {
	root      *trace.ActiveSpan
	prev      []int
	obsMs     float64
	obsN      int64
	micros    []cluster.Micro
	collected int
	demand    float64
	missing   []int
	fresh     int
	quorumOK  bool
	reachable func(node int) bool
}

// Micros exposes the collected micro-cluster view (fresh plus
// staleness-decayed summaries) for callers that compute something from
// the demand before deciding — the multi-object service derives each
// object's demand signature from it. Read-only; valid until CompleteEpoch.
func (p *PendingEpoch) Micros() []cluster.Micro { return p.micros }

// Demand returns the total collected access weight of the epoch.
func (p *PendingEpoch) Demand() float64 { return p.demand }

// CanDecide reports whether CompleteEpoch will actually run the
// placement machinery: quorum reached and at least one micro-cluster
// collected. Below-quorum and silent epochs complete without consuming
// randomness or changing the placement.
func (p *PendingEpoch) CanDecide() bool { return p.quorumOK && len(p.micros) > 0 }

// EpochOverride injects an externally computed placement into
// CompleteEpoch — the multi-object service's group-shared (and
// capacity-adjusted) solve. Proposed must contain exactly the manager's
// current k distinct candidates; demand-driven k adaptation is skipped,
// since the override's owner pinned k when it sized the placement.
// Forced bypasses the migration-benefit gate (capacity displacement is
// not optional); Displaced is recorded in the decision and ledger.
type EpochOverride struct {
	Proposed  []int
	Forced    bool
	Displaced int

	// Provenance inputs from the multi-object service, recorded (when
	// Config.Provenance is on) as the epoch's gating context and merged
	// into the counterfactual ranking. DriftSkipped marks that the
	// group leader's demand signature moved less than the drift
	// threshold so the cached solve was reused; Drift is that signature
	// distance; Occupancy is the fleet-wide capacity fill fraction at
	// settle time; Frontier lists the alternative placements the group
	// solve actually scored (k-means seed, cache seed, branch-and-bound
	// incumbents) with their read-objective mean costs.
	DriftSkipped bool
	Drift        float64
	Occupancy    float64
	Frontier     []provenance.Candidate
}

// staleSummary is a cached summary with its age in epochs (0 = collected
// this epoch).
type staleSummary struct {
	micros []cluster.Micro
	age    int
}

// NewManager creates a manager over the given candidate data centers.
// coords must cover every node index that will ever be routed or hosted.
// initial lists the starting replica locations; nil places the first K
// candidates.
func NewManager(cfg Config, candidates []int, coords []coord.Coordinate, initial []int) (*Manager, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(candidates) < cfg.KPolicy.Max {
		return nil, fmt.Errorf("replica: %d candidates but KPolicy.Max=%d", len(candidates), cfg.KPolicy.Max)
	}
	seen := make(map[int]bool, len(candidates))
	for _, c := range candidates {
		if c < 0 || c >= len(coords) {
			return nil, fmt.Errorf("replica: candidate %d outside coordinate range", c)
		}
		if seen[c] {
			return nil, fmt.Errorf("replica: duplicate candidate %d", c)
		}
		seen[c] = true
	}
	if initial == nil {
		initial = append([]int(nil), candidates[:cfg.K]...)
	}
	if len(initial) != cfg.K {
		return nil, fmt.Errorf("replica: %d initial replicas for K=%d", len(initial), cfg.K)
	}
	for _, rep := range initial {
		if !seen[rep] {
			return nil, fmt.Errorf("replica: initial replica %d is not a candidate", rep)
		}
	}

	positions := make([]vec.Vec, len(coords))
	for i := range coords {
		positions[i] = coords[i].Pos
	}
	m := &Manager{
		cfg:        cfg,
		candidates: append([]int(nil), candidates...),
		coords:     coords,
		positions:  positions,
		k:          cfg.K,
		servers:    make(map[int]*Server, cfg.K),
		replicas:   append([]int(nil), initial...),
		met:        newManagerMetrics(cfg.Metrics),
		lastKnown:  make(map[int]staleSummary),
	}
	m.met.k.Set(float64(cfg.K))
	if cfg.Provenance && cfg.Metrics != nil {
		m.provEst = provenance.NewEstimator(cfg.Metrics)
	}
	for _, rep := range m.replicas {
		srv, err := cfg.newServer(rep)
		if err != nil {
			return nil, err
		}
		m.servers[rep] = srv
	}
	return m, nil
}

// Replicas returns a copy of the current replica locations.
func (m *Manager) Replicas() []int { return append([]int(nil), m.replicas...) }

// K returns the current replication degree.
func (m *Manager) K() int { return m.k }

// Epoch returns how many epochs have completed.
func (m *Manager) Epoch() int { return m.epoch }

// Migrations returns how many epochs ended in an adopted migration.
func (m *Manager) Migrations() int { return m.migrations }

// LastProvenance returns the provenance record the most recent
// completed epoch captured, or nil when the manager runs without
// Config.Provenance (or no epoch has completed yet). The record is
// reused across epochs: callers that need it past the next epoch tick
// must copy it.
func (m *Manager) LastProvenance() *provenance.Record {
	if !m.provReady {
		return nil
	}
	return &m.prov
}

// Route returns the replica that should serve a client at the given
// coordinate — the one with the smallest predicted RTT (§II-A).
func (m *Manager) Route(client coord.Coordinate) int {
	rep, _ := m.route(client)
	return rep
}

func (m *Manager) route(client coord.Coordinate) (int, float64) {
	best, bestD := m.replicas[0], math.Inf(1)
	for _, rep := range m.replicas {
		if d := client.DistanceTo(m.coords[rep]); d < bestD {
			best, bestD = rep, d
		}
	}
	return best, bestD
}

// Record routes the access and folds it into the serving replica's
// summary, returning the serving replica.
func (m *Manager) Record(client coord.Coordinate, weight float64) (int, error) {
	rep, predMs := m.route(client)
	if err := m.servers[rep].Record(client.Pos, weight); err != nil {
		return rep, err
	}
	m.met.accesses.Inc()
	m.met.accessWeight.Add(weight)
	m.met.routeMs.Observe(predMs)
	return rep, nil
}

// RecordAt folds an access into a specific replica's summary, for callers
// that route externally (e.g. the TCP daemon, where the client picked the
// server itself).
func (m *Manager) RecordAt(rep int, clientPos vec.Vec, weight float64) error {
	srv, ok := m.servers[rep]
	if !ok {
		return fmt.Errorf("replica: node %d does not hold a replica", rep)
	}
	return srv.Record(clientPos, weight)
}

// RecordBatchAt folds a batch of accesses into a specific replica's
// summary: clients[i] (a node index into the manager's coordinates)
// accessed with weights[i]; nil weights means unit weight. This is the
// planet-scale ingest hot path — one call per aggregated simnet frame —
// and it allocates nothing in steady state.
func (m *Manager) RecordBatchAt(rep int, clients []int, weights []float64) error {
	srv, ok := m.servers[rep]
	if !ok {
		return fmt.Errorf("replica: node %d does not hold a replica", rep)
	}
	if err := srv.RecordBatch(clients, m.positions, weights); err != nil {
		return err
	}
	m.met.accesses.Add(int64(len(clients)))
	if weights != nil {
		var w float64
		for _, x := range weights {
			w += x
		}
		m.met.accessWeight.Add(w)
	} else {
		m.met.accessWeight.Add(float64(len(clients)))
	}
	return nil
}

// RecordObserved reports the measured mean access delay of the epoch in
// progress — ground truth from whatever routing layer the caller runs
// (the georep manager's Read path, the simulators' delay models). It is
// consumed by the next EndEpoch and written to the ledger record so the
// auditor can compare estimates against reality. Calling it is optional;
// without it the record carries Accesses == 0.
func (m *Manager) RecordObserved(meanMs float64, accesses int64) {
	m.observedMs, m.observedAccesses = meanMs, accesses
}

// EndEpoch runs the periodic coordinator cycle: collect summaries, adapt
// k to demand, propose a placement, apply it if the migration policy
// approves, and age the summaries. It returns the decision either way.
func (m *Manager) EndEpoch(r *rand.Rand) (Decision, error) {
	return m.EndEpochDegraded(r, nil)
}

// EndEpochDegraded is EndEpoch under partial failure: reachable reports
// whether a replica's summary can be collected this epoch (nil = all
// reachable). Unreachable replicas contribute their last-known summary
// with its weight scaled by DecayFactor^age — stale demand counts, but
// less the older it is. When fewer than Quorum·k fresh summaries arrive
// the epoch is recorded as degraded: the coordinator still estimates
// delays from what it has, but refuses to adapt k or commit a migration
// from a below-quorum view of the world.
func (m *Manager) EndEpochDegraded(r *rand.Rand, reachable func(node int) bool) (Decision, error) {
	p, err := m.BeginEpoch(reachable)
	if err != nil {
		return Decision{}, err
	}
	return m.CompleteEpoch(r, p, nil)
}

// BeginEpoch runs the collect half of the coordinator cycle: it advances
// the epoch counter, gathers every reachable replica's summary
// (accounting wire bytes as the real system would), substitutes
// staleness-decayed cached summaries for unreachable replicas, and
// checks quorum. The returned pending epoch aliases manager scratch and
// MUST be finished with CompleteEpoch before the next BeginEpoch. The
// split exists for the multi-object placement service, which collects
// every object first, groups objects by demand signature, and then
// completes each epoch with a group-shared placement.
func (m *Manager) BeginEpoch(reachable func(node int) bool) (*PendingEpoch, error) {
	m.epoch++
	root := m.cfg.Tracer.StartRoot(fmt.Sprintf("epoch %d", m.epoch), trace.KindEpoch)
	root.SetAttr("epoch", strconv.Itoa(m.epoch))
	root.SetAttr("k", strconv.Itoa(m.k))

	// The observed-delay window closes with this epoch whether or not the
	// decision succeeds; consume it now.
	p := &PendingEpoch{
		root:      root,
		prev:      append(m.prevScratch[:0], m.replicas...),
		obsMs:     m.observedMs,
		obsN:      m.observedAccesses,
		micros:    m.microScratch[:0],
		reachable: reachable,
	}
	m.observedMs, m.observedAccesses = 0, 0
	for _, rep := range m.replicas {
		sp := m.cfg.Tracer.Start(root.Context(), fmt.Sprintf("collect %d", rep), trace.KindCollect)
		sp.SetAttr("replica", strconv.Itoa(rep))
		if reachable != nil && !reachable(rep) {
			p.missing = append(p.missing, rep)
			lk, ok := m.lastKnown[rep]
			if !ok {
				sp.SetErrString(fmt.Sprintf("replica %d unreachable: no cached summary", rep))
				sp.End()
				continue // never collected: nothing to reuse
			}
			lk.age++
			m.lastKnown[rep] = lk
			scale := math.Pow(m.cfg.DecayFactor, float64(lk.age))
			for _, mc := range lk.micros {
				mc.Weight *= scale
				p.micros = append(p.micros, mc)
				p.demand += mc.Weight
			}
			sp.SetErrString(fmt.Sprintf("replica %d unreachable: stale summary age %d", rep, lk.age))
			sp.End()
			continue
		}
		srv := m.servers[rep]
		// Export copies the summary (the copy must outlive this epoch in
		// lastKnown) into the slot's previous backing — dead since last
		// epoch — then the wire length is computed arithmetically: same
		// bytes as shipping the encoding, with no encode, decode, or
		// steady-state allocation on the collect path.
		ms, err := srv.ExportInto(m.lastKnown[rep].micros[:0])
		if err != nil {
			sp.SetErr(err)
			sp.End()
			root.SetErr(err)
			root.End()
			return nil, err
		}
		n := cluster.EncodedMicrosLen(ms)
		p.collected += n
		m.lastKnown[rep] = staleSummary{micros: ms, age: 0}
		p.fresh++
		p.micros = append(p.micros, ms...)
		for i := range ms {
			p.demand += ms[i].Weight
		}
		sp.SetAttr("bytes", strconv.Itoa(n))
		sp.End()
	}
	m.microScratch = p.micros[:0]
	m.prevScratch = p.prev[:0]
	p.quorumOK = float64(p.fresh) >= m.cfg.Quorum*float64(len(m.replicas))
	switch {
	case !p.quorumOK:
		root.MarkAnomalous("below_quorum")
	case len(p.missing) > 0:
		root.MarkAnomalous("degraded")
	}
	if len(p.missing) > 0 {
		root.SetAttr("missing", fmt.Sprint(p.missing))
	}

	m.met.epochs.Inc()
	m.met.summaryBytes.Add(int64(p.collected))
	m.met.summaryHist.Observe(float64(p.collected))
	if len(p.missing) > 0 {
		m.met.degraded.Inc()
		m.met.missing.Add(int64(len(p.missing)))
	}
	return p, nil
}

// CompleteEpoch runs the decide half of the coordinator cycle on a
// pending epoch: k adaptation, placement proposal (or the injected
// override's), migration gating, application, summary aging, and the
// ledger append. With ov == nil this is byte-identical to the
// pre-split EndEpochDegraded decision path — the singleton-group
// equivalence the multi-object service's exact mode relies on.
func (m *Manager) CompleteEpoch(r *rand.Rand, p *PendingEpoch, ov *EpochOverride) (dec Decision, err error) {
	root := p.root
	defer root.End() // idempotent; covers every return path
	m.provReady = false
	micros, reachable := p.micros, p.reachable
	if m.cfg.Ledger != nil {
		defer func() {
			if err == nil {
				err = m.appendLedger(p.prev, micros, dec, p.obsMs, p.obsN)
			}
		}()
	}

	dec = Decision{
		NewReplicas:      m.Replicas(),
		K:                m.k,
		CollectedBytes:   p.collected,
		Degraded:         len(p.missing) > 0,
		MissingSummaries: p.missing,
		QuorumOK:         p.quorumOK,
		Leader:           -1,
	}
	if m.cfg.WriteFraction > 0 {
		// The current placement always has a write leader, even on
		// epochs that decide nothing.
		dec.Leader = replog.ChooseLeader(m.cfg.LeaderPolicy, m.replicas, micros, m.coords)
	}
	if !p.quorumOK {
		// Too few live summaries to trust any decision: estimate for the
		// record, change nothing, and age only the replicas that heard
		// from us (the unreachable ones never received the decay command).
		m.met.quorumBlock.Inc()
		if len(micros) > 0 {
			if est, err := estimateMeanDelayScratch(&m.estScratch, micros, m.replicas, m.coords); err == nil {
				dec.EstimatedOldMs, dec.EstimatedNewMs = est, est
			}
		}
		m.provTrivial(provenance.ReasonQuorumGated, p, ov, &dec)
		return dec, m.decaySummaries(reachable)
	}
	if len(micros) == 0 {
		m.provTrivial(provenance.ReasonSteady, p, ov, &dec)
		return dec, nil // silent epoch: nothing to learn from
	}

	var proposed []int
	if ov != nil && ov.Proposed != nil {
		// Externally solved placement: k stays pinned (the solver sized
		// the placement) and the k-means stage is skipped entirely.
		if len(ov.Proposed) != m.k {
			err := fmt.Errorf("replica: override proposes %d replicas for k=%d", len(ov.Proposed), m.k)
			root.SetErr(err)
			return dec, err
		}
		proposed = ov.Proposed
		dec.Displaced = ov.Displaced
	} else {
		// Demand-driven k adaptation.
		kp := m.cfg.KPolicy
		switch {
		case kp.GrowAbove > 0 && p.demand > kp.GrowAbove && m.k < kp.Max:
			m.k++
		case kp.ShrinkBelow > 0 && p.demand < kp.ShrinkBelow && m.k > kp.Min:
			m.k--
		}
		dec.K = m.k

		km := m.cfg.Tracer.Start(root.Context(), "kmeans", trace.KindKMeans)
		km.SetAttr("micros", strconv.Itoa(len(micros)))
		proposed, err = ProposePlacementOpt(r, micros, m.k, m.candidates, m.coords,
			cluster.Options{Parallelism: m.cfg.Parallelism, Metrics: m.cfg.Metrics, Scratch: &m.kmScratch})
		km.SetErr(err)
		km.End()
		if err != nil {
			root.SetErr(err)
			return dec, err
		}
	}
	dec.Proposed = append([]int(nil), proposed...)

	ds := m.cfg.Tracer.Start(root.Context(), "decide", trace.KindDecide)
	oldEst, err := estimateMeanDelayScratch(&m.estScratch, micros, m.replicas, m.coords)
	if err != nil {
		ds.SetErr(err)
		ds.End()
		root.SetErr(err)
		return dec, err
	}
	newEst, err := estimateMeanDelayScratch(&m.estScratch, micros, proposed, m.coords)
	if err != nil {
		ds.SetErr(err)
		ds.End()
		root.SetErr(err)
		return dec, err
	}
	dec.EstimatedOldMs, dec.EstimatedNewMs = oldEst, newEst
	dec.MovedReplicas = countMoved(m.replicas, proposed)
	m.met.k.Set(float64(m.k))
	m.met.estOldMs.Set(oldEst)
	m.met.estNewMs.Set(newEst)
	m.met.estGainMs.Set(oldEst - newEst)

	// With a write share, the migration gate compares blended costs:
	// (1-wf)·read + wf·(client→leader + leader→follower fanout). With
	// wf == 0 this is exactly the read-only arithmetic — the gate sees
	// the same floats, so decisions are byte-identical.
	gateOld, gateNew := oldEst, newEst
	leaderNew := -1
	if wf := m.cfg.WriteFraction; wf > 0 {
		leaderNew = replog.ChooseLeader(m.cfg.LeaderPolicy, proposed, micros, m.coords)
		wOld := replog.WriteMs(dec.Leader, micros, m.coords) + replog.FanoutMs(dec.Leader, m.replicas, m.coords)
		wNew := replog.WriteMs(leaderNew, micros, m.coords) + replog.FanoutMs(leaderNew, proposed, m.coords)
		dec.WriteCostOldMs, dec.WriteCostNewMs = wOld, wNew
		gateOld = (1-wf)*oldEst + wf*wOld
		gateNew = (1-wf)*newEst + wf*wNew
		m.met.writeOldMs.Set(wOld)
		m.met.writeNewMs.Set(wNew)
	}

	kchanged := len(proposed) != len(m.replicas) // k changed: must reshape
	forced := kchanged ||
		(ov != nil && ov.Forced) // capacity displacement is not optional
	approved := forced || m.approveMigration(gateOld, gateNew, p.demand, dec.MovedReplicas)
	if approved && !forced && dec.MovedReplicas > 0 &&
		m.cfg.HoldMigrations != nil && m.cfg.HoldMigrations() {
		// The gate liked the move, but the SLO engine says the error
		// budget is spent: optional data movement waits for recovery.
		approved = false
		dec.Held = true
		m.met.held.Inc()
		root.MarkAnomalous("migration_held_budget")
	}
	if approved {
		if err := m.applyPlacement(proposed); err != nil {
			ds.SetErr(err)
			ds.End()
			root.SetErr(err)
			return dec, err
		}
		dec.Migrate = true
		dec.NewReplicas = m.Replicas()
		if leaderNew >= 0 {
			dec.Leader = leaderNew
		}
		if dec.MovedReplicas > 0 || kchanged {
			m.migrations++
			m.met.migrations.Inc()
			m.met.moved.Add(int64(dec.MovedReplicas))
			root.MarkAnomalous("migrated")
		}
	}
	ds.SetAttr("migrate", strconv.FormatBool(dec.Migrate))
	ds.SetAttr("moved", strconv.Itoa(dec.MovedReplicas))
	ds.SetAttr("gain_ms", strconv.FormatFloat(oldEst-newEst, 'f', 3, 64))
	if m.cfg.WriteFraction > 0 {
		ds.SetAttr("leader", strconv.Itoa(dec.Leader))
		m.met.leader.Set(float64(dec.Leader))
	}
	ds.End()

	m.provDecide(p, ov, &dec, gateOld, gateNew, proposed)

	// Age the surviving summaries so the next epoch reflects recent use.
	return dec, m.decaySummaries(reachable)
}

// decaySummaries ages the summaries of every replica the coordinator can
// reach; an unreachable replica keeps its un-decayed state until it
// rejoins (it never heard the decay command).
func (m *Manager) decaySummaries(reachable func(node int) bool) error {
	for rep, srv := range m.servers {
		if reachable != nil && !reachable(rep) {
			continue
		}
		if err := srv.Decay(m.cfg.DecayFactor); err != nil {
			return err
		}
	}
	return nil
}

// approveMigration applies the MigrationPolicy to an estimated gain.
func (m *Manager) approveMigration(oldEst, newEst, demand float64, moved int) bool {
	if moved == 0 {
		return true // same placement: "migrating" is free and a no-op
	}
	if newEst >= oldEst || oldEst <= 0 {
		return false
	}
	relGain := (oldEst - newEst) / oldEst
	if relGain < m.cfg.Migration.MinRelativeGain {
		return false
	}
	if m.cfg.Migration.CostPerByte > 0 {
		cost := float64(moved) * m.cfg.Migration.ObjectBytes * m.cfg.Migration.CostPerByte
		benefit := (oldEst - newEst) * demand * m.cfg.Migration.GainPerMsAccess
		if benefit <= cost {
			return false
		}
	}
	return true
}

// applyPlacement migrates the replica set: servers at kept locations
// retain their summaries, new locations start fresh, dropped locations
// are discarded.
func (m *Manager) applyPlacement(newReps []int) error {
	next := make(map[int]*Server, len(newReps))
	for _, rep := range newReps {
		if srv, ok := m.servers[rep]; ok {
			next[rep] = srv
			continue
		}
		srv, err := m.cfg.newServer(rep)
		if err != nil {
			return err
		}
		next[rep] = srv
	}
	m.servers = next
	for rep := range m.lastKnown {
		if _, kept := next[rep]; !kept {
			delete(m.lastKnown, rep)
		}
	}
	m.replicas = append(m.replicas[:0], newReps...)
	sort.Ints(m.replicas)
	return nil
}

// countMoved returns how many locations of b are not in a — the number of
// new replicas that would need a data copy.
func countMoved(a, b []int) int {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	moved := 0
	for _, x := range b {
		if !in[x] {
			moved++
		}
	}
	return moved
}

// Package simnet is a deterministic discrete-event network simulator. It
// reproduces the paper's evaluation methodology: node-to-node
// communication is emulated on top of a measured (or synthetic) RTT
// matrix, with a virtual clock in milliseconds. Events with equal
// timestamps fire in scheduling order, so a run is a pure function of its
// inputs.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// NodeID identifies a simulated node; it indexes the latency matrix.
type NodeID int

// Message is a one-way payload delivery between nodes.
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
}

// MessageHandler reacts to a delivered message. It runs at the message's
// arrival time and may schedule further traffic via the simulator.
type MessageHandler func(s *Simulator, m Message)

// RequestHandler serves an RPC: it receives a request payload and returns
// the response payload, which the simulator delivers back to the caller
// half an RTT later.
type RequestHandler func(s *Simulator, from NodeID, req any) (resp any)

// node is the per-node registration record.
type node struct {
	onMessage MessageHandler
	onRequest RequestHandler
}

// event is one scheduled occurrence.
type event struct {
	at  float64 // virtual ms
	seq uint64  // tie-break: FIFO among equal timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// LatencyFunc returns the RTT in milliseconds between two nodes. It may
// be non-deterministic (e.g. a noisy sampler); the simulator itself adds
// no randomness.
type LatencyFunc func(from, to NodeID) float64

// FaultFunc rules on one one-way leg at send time: drop loses the
// message entirely (the destination handler never runs; for a Call the
// completion callback never fires — timeouts are the caller's concern),
// extraMs delays delivery on top of the propagation latency. It is
// typically backed by a seeded faults.Injector so the same scenario
// replays identically, but any function works.
type FaultFunc func(from, to NodeID) (drop bool, extraMs float64)

// Simulator owns the virtual clock and event queue. It is single-
// threaded by design: handlers run inline during Run.
type Simulator struct {
	rtt       LatencyFunc
	faults    FaultFunc
	nodes     map[NodeID]*node
	queue     eventHeap
	clock     float64
	seq       uint64
	delivered uint64
	dropped   uint64
	batches   uint64
	batched   uint64
	running   bool
}

// New creates a simulator over the given RTT oracle.
func New(rtt LatencyFunc) *Simulator {
	return &Simulator{rtt: rtt, nodes: make(map[NodeID]*node)}
}

// AddNode registers a node. Either handler may be nil if the node never
// receives that kind of traffic.
func (s *Simulator) AddNode(id NodeID, onMessage MessageHandler, onRequest RequestHandler) error {
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("simnet: node %d already registered", id)
	}
	s.nodes[id] = &node{onMessage: onMessage, onRequest: onRequest}
	return nil
}

// SetFaults installs (or, with nil, removes) the fault hook consulted
// for every one-way leg. Faults apply from the next send; messages
// already in flight are unaffected.
func (s *Simulator) SetFaults(f FaultFunc) { s.faults = f }

// Now returns the current virtual time in milliseconds.
func (s *Simulator) Now() float64 { return s.clock }

// Delivered returns the number of one-way deliveries performed so far.
func (s *Simulator) Delivered() uint64 { return s.delivered }

// DroppedLegs returns the number of one-way legs lost to injected
// faults so far.
func (s *Simulator) DroppedLegs() uint64 { return s.dropped }

// After schedules fn to run delay milliseconds from now.
func (s *Simulator) After(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("simnet: invalid delay %v", delay)
	}
	s.push(s.clock+delay, fn)
	return nil
}

func (s *Simulator) push(at float64, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// Send delivers a one-way message after half the pair's RTT. The
// destination's MessageHandler runs at arrival; a missing destination or
// handler drops the message silently, modelling an unreachable host.
func (s *Simulator) Send(from, to NodeID, payload any) error {
	oneWay, err := s.oneWay(from, to)
	if err != nil {
		return err
	}
	if s.faults != nil {
		drop, extra := s.faults(from, to)
		if drop {
			s.dropped++
			return nil // lost in the network, like a real datagram
		}
		oneWay += extra
	}
	s.push(s.clock+oneWay, func() {
		s.delivered++
		if n, ok := s.nodes[to]; ok && n.onMessage != nil {
			n.onMessage(s, Message{From: from, To: to, Payload: payload})
		}
	})
	return nil
}

// Batches returns the number of aggregated frames delivered via
// SendBatch so far.
func (s *Simulator) Batches() uint64 { return s.batches }

// BatchedMessages returns the total number of logical messages carried
// by delivered SendBatch frames.
func (s *Simulator) BatchedMessages() uint64 { return s.batched }

// SendBatch delivers one aggregated frame carrying count logical
// messages from one node to another, after half the pair's RTT. This is
// how high-rate access streams traverse the simulator without one event
// per access: the sender coalesces an epoch's worth of traffic per
// destination into a single frame, so the event queue scales with the
// number of (source, destination) pairs, not the access rate. Fault
// injection rules once on the whole frame — a dropped frame loses every
// message in it, like a lost jumbo datagram.
func (s *Simulator) SendBatch(from, to NodeID, count int, payload any) error {
	if count <= 0 {
		return fmt.Errorf("simnet: batch of %d messages", count)
	}
	oneWay, err := s.oneWay(from, to)
	if err != nil {
		return err
	}
	if s.faults != nil {
		drop, extra := s.faults(from, to)
		if drop {
			s.dropped++
			return nil
		}
		oneWay += extra
	}
	s.push(s.clock+oneWay, func() {
		s.delivered++
		s.batches++
		s.batched += uint64(count)
		if n, ok := s.nodes[to]; ok && n.onMessage != nil {
			n.onMessage(s, Message{From: from, To: to, Payload: payload})
		}
	})
	return nil
}

// Reply is the completion callback of Call: resp is the responder's
// payload and rttMs the full measured round-trip time.
type Reply func(resp any, rttMs float64)

// Call performs a simulated RPC from one node to another: the request
// arrives after half an RTT, the destination's RequestHandler produces a
// response, and done runs at the caller after the second half. If the
// destination has no request handler, done never runs (a timeout is the
// caller's concern; the paper's algorithms only contact live replicas).
// Injected faults rule on each leg independently, at the virtual time
// that leg starts: a dropped request or a dropped response both leave
// the caller waiting forever, exactly like a lost packet.
func (s *Simulator) Call(from, to NodeID, req any, done Reply) error {
	oneWay, err := s.oneWay(from, to)
	if err != nil {
		return err
	}
	base := oneWay
	sendTime := s.clock
	if s.faults != nil {
		drop, extra := s.faults(from, to)
		if drop {
			s.dropped++
			return nil
		}
		oneWay += extra
	}
	s.push(s.clock+oneWay, func() {
		s.delivered++
		n, ok := s.nodes[to]
		if !ok || n.onRequest == nil {
			return
		}
		resp := n.onRequest(s, from, req)
		back := base
		if s.faults != nil {
			drop, extra := s.faults(to, from)
			if drop {
				s.dropped++
				return
			}
			back += extra
		}
		s.push(s.clock+back, func() {
			s.delivered++
			if done != nil {
				done(resp, s.clock-sendTime)
			}
		})
	})
	return nil
}

func (s *Simulator) oneWay(from, to NodeID) (float64, error) {
	if _, ok := s.nodes[from]; !ok {
		return 0, fmt.Errorf("simnet: unknown sender %d", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return 0, fmt.Errorf("simnet: unknown destination %d", to)
	}
	if from == to {
		return 0, nil
	}
	rtt := s.rtt(from, to)
	if rtt < 0 || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
		return 0, fmt.Errorf("simnet: latency oracle returned %v for (%d,%d)", rtt, from, to)
	}
	return rtt / 2, nil
}

// Run processes events until the queue drains or maxEvents fire,
// returning the number of events processed. maxEvents <= 0 means
// unlimited (the queue must drain on its own).
func (s *Simulator) Run(maxEvents int) (int, error) {
	if s.running {
		return 0, fmt.Errorf("simnet: Run re-entered from a handler")
	}
	s.running = true
	defer func() { s.running = false }()

	processed := 0
	for len(s.queue) > 0 {
		if maxEvents > 0 && processed >= maxEvents {
			return processed, fmt.Errorf("simnet: event budget %d exhausted at t=%.1fms", maxEvents, s.clock)
		}
		e := heap.Pop(&s.queue).(*event)
		if e.at < s.clock {
			return processed, fmt.Errorf("simnet: time went backwards: %v < %v", e.at, s.clock)
		}
		s.clock = e.at
		e.fn()
		processed++
	}
	return processed, nil
}

// RunUntil processes events with timestamps <= deadline (milliseconds),
// leaving later events queued and advancing the clock to the deadline.
func (s *Simulator) RunUntil(deadline float64) (int, error) {
	if s.running {
		return 0, fmt.Errorf("simnet: RunUntil re-entered from a handler")
	}
	s.running = true
	defer func() { s.running = false }()

	processed := 0
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		e := heap.Pop(&s.queue).(*event)
		s.clock = e.at
		e.fn()
		processed++
	}
	if s.clock < deadline {
		s.clock = deadline
	}
	return processed, nil
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

package simnet

import (
	"testing"

	"github.com/georep/georep/internal/faults"
)

func TestFaultDropLosesSend(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 10}))
	delivered := false
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(2, func(*Simulator, Message) { delivered = true }, nil); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(func(from, to NodeID) (bool, float64) { return true, 0 })
	if err := s.Send(1, 2, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("dropped message was delivered")
	}
	if s.DroppedLegs() != 1 {
		t.Errorf("DroppedLegs = %d, want 1", s.DroppedLegs())
	}
	if s.Delivered() != 0 {
		t.Errorf("Delivered = %d, want 0", s.Delivered())
	}
}

func TestFaultDropOnEitherCallLegSilencesReply(t *testing.T) {
	// Leg selection: first drop the request (handler never runs), then
	// drop only the response (handler runs, callback still never fires).
	for _, dropReply := range []bool{false, true} {
		s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 10}))
		handled, replied := false, false
		if err := s.AddNode(1, nil, nil); err != nil {
			t.Fatal(err)
		}
		err := s.AddNode(2, nil, func(*Simulator, NodeID, any) any {
			handled = true
			return "ok"
		})
		if err != nil {
			t.Fatal(err)
		}
		s.SetFaults(func(from, to NodeID) (bool, float64) {
			// The reply leg runs 2->1; the request leg 1->2.
			if dropReply {
				return from == 2, 0
			}
			return from == 1, 0
		})
		if err := s.Call(1, 2, nil, func(any, float64) { replied = true }); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		if handled != dropReply {
			t.Errorf("dropReply=%v: handler ran = %v", dropReply, handled)
		}
		if replied {
			t.Errorf("dropReply=%v: reply callback fired despite drop", dropReply)
		}
		if s.DroppedLegs() != 1 {
			t.Errorf("dropReply=%v: DroppedLegs = %d, want 1", dropReply, s.DroppedLegs())
		}
	}
}

func TestFaultExtraLatencyLengthensRTT(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 80}))
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(2, nil, func(*Simulator, NodeID, any) any { return "ok" }); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(func(from, to NodeID) (bool, float64) {
		if from == 1 { // request leg only
			return false, 25
		}
		return false, 0
	})
	var rtt float64 = -1
	if err := s.Call(1, 2, nil, func(_ any, r float64) { rtt = r }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if rtt != 105 { // 40 + 25 out, 40 back
		t.Errorf("measured RTT = %v, want 105", rtt)
	}
}

func TestFaultRemovalRestoresDelivery(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 10}))
	count := 0
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(2, func(*Simulator, Message) { count++ }, nil); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(func(from, to NodeID) (bool, float64) { return true, 0 })
	if err := s.Send(1, 2, "lost"); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(nil)
	if err := s.Send(1, 2, "kept"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("delivered %d messages, want 1 (second send only)", count)
	}
}

// injectorFaults adapts a faults.Injector to the simulator's hook,
// matching how experiments wire the two together.
func injectorFaults(inj *faults.Injector) FaultFunc {
	return func(from, to NodeID) (bool, float64) {
		v := inj.Verdict(int(from), int(to))
		return v.Drop, v.ExtraMs
	}
}

func TestInjectorBackedRunIsDeterministic(t *testing.T) {
	plan, err := faults.Parse(42, "drop 1>2:0.5@0-9; slow 2>1:15@0-9")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (delivered, dropped uint64, clock float64) {
		inj, err := faults.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 20}))
		if err := s.AddNode(1, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.AddNode(2, nil, func(*Simulator, NodeID, any) any { return "ok" }); err != nil {
			t.Fatal(err)
		}
		s.SetFaults(injectorFaults(inj))
		for i := 0; i < 50; i++ {
			if err := s.Call(1, 2, i, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(0); err != nil {
				t.Fatal(err)
			}
		}
		return s.Delivered(), s.DroppedLegs(), s.Now()
	}
	d1, x1, c1 := run()
	d2, x2, c2 := run()
	if d1 != d2 || x1 != x2 || c1 != c2 {
		t.Errorf("runs diverged: (%d,%d,%v) vs (%d,%d,%v)", d1, x1, c1, d2, x2, c2)
	}
	if x1 == 0 {
		t.Error("0.5 drop probability over 50 calls dropped nothing")
	}
	if d1 == 0 {
		t.Error("every call dropped; expected some deliveries")
	}
}

func TestInjectorCrashWindowBlocksBothDirections(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Crashes: []faults.Crash{{Node: 2, From: 3, To: 5}}}
	inj, err := faults.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 10}))
	replies := 0
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(2, nil, func(*Simulator, NodeID, any) any { return "ok" }); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(injectorFaults(inj))
	for epoch := 0; epoch < 8; epoch++ {
		inj.SetEpoch(epoch)
		if err := s.Call(1, 2, epoch, func(any, float64) { replies++ }); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	if replies != 5 { // epochs 0,1,2,6,7 succeed; 3..5 crashed
		t.Errorf("replies = %d, want 5", replies)
	}
	if s.DroppedLegs() != 3 {
		t.Errorf("DroppedLegs = %d, want 3", s.DroppedLegs())
	}
}

package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fixedRTT builds a latency oracle from a symmetric map keyed by the
// smaller node ID first.
func fixedRTT(pairs map[[2]NodeID]float64) LatencyFunc {
	return func(a, b NodeID) float64 {
		if a > b {
			a, b = b, a
		}
		return pairs[[2]NodeID{a, b}]
	}
}

func TestSendDeliversAfterHalfRTT(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 100}))
	var arrivedAt float64 = -1
	var got Message
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	err := s.AddNode(2, func(sim *Simulator, m Message) {
		arrivedAt = sim.Now()
		got = m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(1, 2, "hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if arrivedAt != 50 {
		t.Errorf("arrival at %v ms, want 50", arrivedAt)
	}
	if got.From != 1 || got.To != 2 || got.Payload != "hello" {
		t.Errorf("message = %+v", got)
	}
	if s.Delivered() != 1 {
		t.Errorf("Delivered = %d", s.Delivered())
	}
}

func TestCallMeasuresFullRTT(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 80}))
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	err := s.AddNode(2, nil, func(sim *Simulator, from NodeID, req any) any {
		return req.(int) * 2
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotResp any
	var gotRTT float64
	if err := s.Call(1, 2, 21, func(resp any, rtt float64) {
		gotResp, gotRTT = resp, rtt
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if gotResp != 42 {
		t.Errorf("response = %v, want 42", gotResp)
	}
	if gotRTT != 80 {
		t.Errorf("measured RTT = %v, want 80", gotRTT)
	}
}

func TestSelfCallIsInstant(t *testing.T) {
	s := New(fixedRTT(nil))
	if err := s.AddNode(1, nil, func(sim *Simulator, from NodeID, req any) any { return "ok" }); err != nil {
		t.Fatal(err)
	}
	var rtt float64 = -1
	if err := s.Call(1, 1, nil, func(resp any, r float64) { rtt = r }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if rtt != 0 {
		t.Errorf("self RTT = %v, want 0", rtt)
	}
}

func TestUnknownNodesRejected(t *testing.T) {
	s := New(fixedRTT(nil))
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(1, 9, nil); err == nil {
		t.Error("unknown destination should fail")
	}
	if err := s.Send(9, 1, nil); err == nil {
		t.Error("unknown sender should fail")
	}
	if err := s.Call(9, 1, nil, nil); err == nil {
		t.Error("unknown caller should fail")
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	s := New(fixedRTT(nil))
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(1, nil, nil); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestBadLatencyOracle(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		s := New(func(a, b NodeID) float64 { return bad })
		if err := s.AddNode(1, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.AddNode(2, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Send(1, 2, nil); err == nil {
			t.Errorf("latency %v should be rejected", bad)
		}
	}
}

func TestAfterValidation(t *testing.T) {
	s := New(fixedRTT(nil))
	if err := s.After(-1, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
	if err := s.After(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay should fail")
	}
}

func TestEventOrderingFIFOAtSameTime(t *testing.T) {
	s := New(fixedRTT(nil))
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.After(10, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestClockMonotone(t *testing.T) {
	s := New(fixedRTT(nil))
	var times []float64
	for _, d := range []float64{30, 10, 20} {
		if err := s.After(d, func() { times = append(times, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if times[0] != 10 || times[1] != 20 || times[2] != 30 {
		t.Errorf("fire times = %v", times)
	}
}

func TestEventBudget(t *testing.T) {
	s := New(fixedRTT(nil))
	var bomb func()
	bomb = func() {
		_ = s.After(1, bomb) // endless chain
	}
	if err := s.After(1, bomb); err != nil {
		t.Fatal(err)
	}
	n, err := s.Run(100)
	if err == nil {
		t.Error("budget exhaustion should error")
	}
	if n != 100 {
		t.Errorf("processed %d events, want 100", n)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(fixedRTT(nil))
	fired := make(map[float64]bool)
	for _, d := range []float64{5, 15, 25} {
		d := d
		if err := s.After(d, func() { fired[d] = true }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.RunUntil(20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || !fired[5] || !fired[15] || fired[25] {
		t.Errorf("n=%d fired=%v", n, fired)
	}
	if s.Now() != 20 {
		t.Errorf("clock = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired[25] {
		t.Error("remaining event never fired")
	}
}

func TestNestedSchedulingFromHandlers(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 10, {2, 3}: 10, {1, 3}: 10}))
	var path []NodeID
	relay := func(next NodeID) MessageHandler {
		return func(sim *Simulator, m Message) {
			path = append(path, m.To)
			if next != 0 {
				if err := sim.Send(m.To, next, m.Payload); err != nil {
					t.Errorf("relay send: %v", err)
				}
			}
		}
	}
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(2, relay(3), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(3, relay(0), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(1, 2, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != 2 || path[1] != 3 {
		t.Errorf("path = %v", path)
	}
	if s.Now() != 10 { // two hops × 5ms one-way
		t.Errorf("final clock = %v, want 10", s.Now())
	}
}

func TestCallToNodeWithoutHandlerDropsSilently(t *testing.T) {
	s := New(fixedRTT(map[[2]NodeID]float64{{1, 2}: 10}))
	if err := s.AddNode(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	called := false
	if err := s.Call(1, 2, nil, func(any, float64) { called = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("reply callback ran although destination has no handler")
	}
}

// Property: for random topologies and traffic, the simulator clock never
// moves backwards and all RPC RTT measurements equal the oracle's value.
func TestQuickRPCMeasurement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		rtts := make(map[[2]NodeID]float64)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				rtts[[2]NodeID{NodeID(i), NodeID(j)}] = 1 + r.Float64()*200
			}
		}
		s := New(fixedRTT(rtts))
		for i := 0; i < n; i++ {
			id := NodeID(i)
			if err := s.AddNode(id, nil, func(sim *Simulator, from NodeID, req any) any { return req }); err != nil {
				return false
			}
		}
		type obs struct {
			want float64
			got  float64
		}
		var results []obs
		for q := 0; q < 20; q++ {
			a := NodeID(r.Intn(n))
			b := NodeID(r.Intn(n))
			want := 0.0
			if a != b {
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				want = rtts[[2]NodeID{lo, hi}]
			}
			o := &obs{want: want, got: -1}
			results = append(results, *o)
			idx := len(results) - 1
			if err := s.Call(a, b, q, func(resp any, rtt float64) {
				results[idx].got = rtt
			}); err != nil {
				return false
			}
		}
		if _, err := s.Run(0); err != nil {
			return false
		}
		for _, o := range results {
			if math.Abs(o.got-o.want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package coord

import (
	"math/rand"
	"testing"

	"github.com/georep/georep/internal/latency"
)

func testMatrix(t *testing.T, n int, seed int64) *latency.Matrix {
	t.Helper()
	cfg := latency.DefaultGenerateConfig()
	cfg.Nodes = n
	m, _, err := latency.Generate(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmbedConfigValidation(t *testing.T) {
	m := testMatrix(t, 10, 1)
	base := DefaultEmbedConfig()
	mutations := []struct {
		name string
		mut  func(*EmbedConfig)
	}{
		{"zero dims", func(c *EmbedConfig) { c.Dims = 0 }},
		{"zero rounds", func(c *EmbedConfig) { c.Rounds = 0 }},
		{"negative noise", func(c *EmbedConfig) { c.NoiseFrac = -0.1 }},
		{"huge noise", func(c *EmbedConfig) { c.NoiseFrac = 0.9 }},
		{"negative neighbors", func(c *EmbedConfig) { c.NeighborSet = -1 }},
		{"neighbor set too large", func(c *EmbedConfig) { c.NeighborSet = 10 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := Embed(rand.New(rand.NewSource(1)), m, cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestEmbedProducesUsefulCoordinates(t *testing.T) {
	m := testMatrix(t, 60, 2)
	for _, algo := range []Algorithm{AlgorithmVivaldi, AlgorithmRNP} {
		t.Run(algo.String(), func(t *testing.T) {
			cfg := DefaultEmbedConfig()
			cfg.Algorithm = algo
			emb, err := Embed(rand.New(rand.NewSource(3)), m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if emb.N() != m.N() {
				t.Fatalf("embedding has %d nodes, want %d", emb.N(), m.N())
			}
			for i, c := range emb.Coords {
				if !c.IsValid() {
					t.Fatalf("node %d coordinate invalid: %+v", i, c)
				}
			}
			s, err := EvalError(emb, m)
			if err != nil {
				t.Fatal(err)
			}
			// A working embedding predicts the median pair within 30%
			// relative error; a broken one is off by 100%+.
			if s.MedianRel > 0.35 {
				t.Errorf("median relative error %v too high — embedding failed", s.MedianRel)
			}
			if emb.Predict(0, 0) != 0 {
				t.Error("self-prediction should be 0")
			}
		})
	}
}

func TestEmbedDeterministic(t *testing.T) {
	m := testMatrix(t, 30, 4)
	cfg := DefaultEmbedConfig()
	cfg.Rounds = 50
	a, err := Embed(rand.New(rand.NewSource(5)), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(rand.New(rand.NewSource(5)), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords {
		if !a.Coords[i].Pos.Equal(b.Coords[i].Pos) {
			t.Fatalf("node %d coordinates differ across identical runs", i)
		}
	}
}

func TestEmbedWithNeighborSet(t *testing.T) {
	m := testMatrix(t, 40, 6)
	cfg := DefaultEmbedConfig()
	cfg.NeighborSet = 8
	emb, err := Embed(rand.New(rand.NewSource(7)), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EvalError(emb, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.MedianRel > 0.5 {
		t.Errorf("neighbor-set embedding median rel error %v too high", s.MedianRel)
	}
}

// The paper's §III-A claim: RNP should predict a majority of pairs with
// low error even under measurement noise, and should not be worse than
// Vivaldi. We verify the ordering on a noisy matrix.
func TestRNPBeatsOrMatchesVivaldiUnderNoise(t *testing.T) {
	m := testMatrix(t, 80, 8)
	run := func(algo Algorithm) ErrorSummary {
		cfg := DefaultEmbedConfig()
		cfg.Algorithm = algo
		cfg.NoiseFrac = 0.25 // unstable platform, RNP's target regime
		cfg.Rounds = 400
		emb, err := Embed(rand.New(rand.NewSource(9)), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := EvalError(emb, m)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	rnp := run(AlgorithmRNP)
	viv := run(AlgorithmVivaldi)
	t.Logf("rnp median rel %.3f vs vivaldi %.3f", rnp.MedianRel, viv.MedianRel)
	if rnp.MedianRel > viv.MedianRel*1.15 {
		t.Errorf("RNP (%v) should not be clearly worse than Vivaldi (%v) under noise",
			rnp.MedianRel, viv.MedianRel)
	}
}

func TestEvalErrorMismatch(t *testing.T) {
	m := testMatrix(t, 10, 10)
	emb := &Embedding{Coords: make([]Coordinate, 5)}
	if _, err := EvalError(emb, m); err == nil {
		t.Error("node count mismatch should fail")
	}
}

func TestGNPEmbed(t *testing.T) {
	m := testMatrix(t, 50, 11)
	r := rand.New(rand.NewSource(12))
	rtt := func(i, j int) float64 { return m.RTT(i, j) }
	landmarks, err := ChooseLandmarks(r, m.N(), 12, rtt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGNPConfig()
	coords, err := GNPEmbed(r, m.N(), landmarks, rtt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := &Embedding{Coords: coords}
	s, err := EvalError(emb, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.MedianRel > 0.5 {
		t.Errorf("GNP median relative error %v too high", s.MedianRel)
	}
}

func TestGNPEmbedValidation(t *testing.T) {
	rtt := func(i, j int) float64 { return 1 }
	r := rand.New(rand.NewSource(13))
	if _, err := GNPEmbed(r, 10, []int{0, 1}, rtt, GNPConfig{Dims: 5, Iterations: 10}); err == nil {
		t.Error("too few landmarks should fail")
	}
	if _, err := GNPEmbed(r, 10, []int{0, 1, 2}, rtt, GNPConfig{Dims: 0, Iterations: 10}); err == nil {
		t.Error("zero dims should fail")
	}
	if _, err := GNPEmbed(r, 10, []int{0, 1, 2, 99}, rtt, GNPConfig{Dims: 2, Iterations: 10}); err == nil {
		t.Error("out-of-range landmark should fail")
	}
	if _, err := GNPEmbed(r, 10, []int{0, 1, 2, 2}, rtt, GNPConfig{Dims: 2, Iterations: 10}); err == nil {
		t.Error("duplicate landmark should fail")
	}
	if _, err := GNPEmbed(r, 10, []int{0, 1, 2, 3}, rtt, GNPConfig{Dims: 2, Iterations: 0}); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestChooseLandmarksSpread(t *testing.T) {
	m := testMatrix(t, 40, 14)
	r := rand.New(rand.NewSource(15))
	rtt := func(i, j int) float64 { return m.RTT(i, j) }
	ls, err := ChooseLandmarks(r, m.N(), 8, rtt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 8 {
		t.Fatalf("got %d landmarks", len(ls))
	}
	seen := make(map[int]bool)
	for _, l := range ls {
		if seen[l] {
			t.Fatalf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	if _, err := ChooseLandmarks(r, 5, 6, rtt); err == nil {
		t.Error("k > n should fail")
	}
	if _, err := ChooseLandmarks(r, 5, 0, rtt); err == nil {
		t.Error("k = 0 should fail")
	}
}

package coord

import (
	"fmt"
	"math/rand"

	"github.com/georep/georep/internal/latency"
	"github.com/georep/georep/internal/stats"
)

// EmbedConfig controls a decentralized embedding run over a latency
// matrix.
type EmbedConfig struct {
	// Algorithm selects Vivaldi or RNP.
	Algorithm Algorithm
	// Dims is the coordinate dimensionality. The Vivaldi paper found 2–5
	// dimensions (plus height) sufficient for Internet RTTs.
	Dims int
	// Rounds is the number of gossip rounds; in each round every node
	// measures one random neighbour and updates.
	Rounds int
	// NoiseFrac adds multiplicative measurement noise, modelling the
	// unstable conditions under which RNP claims its advantage.
	NoiseFrac float64
	// NeighborSet, when positive, restricts each node's contacts to a
	// fixed random subset of this size, matching deployed systems where
	// nodes gossip with a bounded neighbour set.
	NeighborSet int
	// LateJoinFrac, when positive, holds this fraction of nodes out of
	// the system for the first half of the run; they join with fresh
	// coordinates and must converge among already-settled peers —
	// PlanetLab-style churn. Late joiners still end with coordinates.
	LateJoinFrac float64
}

// DefaultEmbedConfig returns a configuration that converges on the
// 226-node matrices used throughout the experiments.
func DefaultEmbedConfig() EmbedConfig {
	return EmbedConfig{
		Algorithm: AlgorithmRNP,
		Dims:      3,
		Rounds:    300,
		NoiseFrac: 0.1,
	}
}

func (c EmbedConfig) validate() error {
	if c.Dims <= 0 {
		return fmt.Errorf("coord: dims must be positive, got %d", c.Dims)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("coord: rounds must be positive, got %d", c.Rounds)
	}
	if c.NoiseFrac < 0 || c.NoiseFrac > 0.5 {
		return fmt.Errorf("coord: noise fraction %v out of [0,0.5]", c.NoiseFrac)
	}
	if c.NeighborSet < 0 {
		return fmt.Errorf("coord: neighbor set %d must be non-negative", c.NeighborSet)
	}
	if c.LateJoinFrac < 0 || c.LateJoinFrac >= 1 {
		return fmt.Errorf("coord: late-join fraction %v out of [0,1)", c.LateJoinFrac)
	}
	return nil
}

// Embedding is the result of a coordinate run: one coordinate per node of
// the source matrix.
type Embedding struct {
	Coords []Coordinate
}

// Predict returns the RTT predicted between nodes i and j.
func (e *Embedding) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	return e.Coords[i].DistanceTo(e.Coords[j])
}

// N returns the number of embedded nodes.
func (e *Embedding) N() int { return len(e.Coords) }

// EmbedStats reports convergence behaviour of an embedding run.
type EmbedStats struct {
	// DriftMsPerRound is the mean per-node coordinate displacement per
	// round over the final quarter of the run. A converged, stable
	// system drifts little; an oscillating one keeps moving. RNP's
	// design goal is lower drift than Vivaldi under noisy measurements.
	DriftMsPerRound float64
	// MeanErrorEstimate is the average of the nodes' own relative error
	// estimates at the end of the run.
	MeanErrorEstimate float64
}

// Embed runs a decentralized embedding over the matrix: Rounds passes in
// which every node measures one random neighbour (with noise) and updates
// its coordinate. The result is deterministic for a given rand source.
func Embed(r *rand.Rand, m *latency.Matrix, cfg EmbedConfig) (*Embedding, error) {
	emb, _, err := EmbedWithStats(r, m, cfg)
	return emb, err
}

// EmbedWithStats is Embed plus convergence statistics.
func EmbedWithStats(r *rand.Rand, m *latency.Matrix, cfg EmbedConfig) (*Embedding, *EmbedStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	n := m.N()
	if cfg.NeighborSet > 0 && cfg.NeighborSet >= n {
		return nil, nil, fmt.Errorf("coord: neighbor set %d must be < node count %d", cfg.NeighborSet, n)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		node, err := NewNode(cfg.Algorithm, cfg.Dims, rand.New(rand.NewSource(r.Int63())))
		if err != nil {
			return nil, nil, err
		}
		nodes[i] = node
	}

	var neighbors [][]int
	if cfg.NeighborSet > 0 {
		neighbors = make([][]int, n)
		for i := range neighbors {
			set := make([]int, 0, cfg.NeighborSet)
			for _, cand := range r.Perm(n) {
				if cand == i {
					continue
				}
				set = append(set, cand)
				if len(set) == cfg.NeighborSet {
					break
				}
			}
			neighbors[i] = set
		}
	}

	// Late joiners stay inactive (no measurements in either direction)
	// until halfway through the run.
	active := make([]bool, n)
	joinRound := make([]int, n)
	for i := range active {
		active[i] = true
	}
	if cfg.LateJoinFrac > 0 {
		joiners := int(float64(n) * cfg.LateJoinFrac)
		for _, i := range r.Perm(n)[:joiners] {
			active[i] = false
			joinRound[i] = cfg.Rounds / 2
		}
	}

	// Drift is measured over the final quarter of the run, when the
	// system should have converged; residual movement is oscillation.
	driftStart := cfg.Rounds * 3 / 4
	prev := make([]Coordinate, n)
	var driftSum float64
	var driftRounds int

	sampler := latency.NewSampler(m, cfg.NoiseFrac, r)
	for round := 0; round < cfg.Rounds; round++ {
		for i := range active {
			if !active[i] && round >= joinRound[i] {
				active[i] = true
			}
		}
		if round >= driftStart {
			for i := range nodes {
				prev[i] = nodes[i].Coordinate()
			}
		}
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			var j int
			if neighbors != nil {
				j = neighbors[i][r.Intn(len(neighbors[i]))]
			} else {
				j = r.Intn(n - 1)
				if j >= i {
					j++
				}
			}
			if !active[j] {
				continue // contacted a node that has not joined yet
			}
			rtt := sampler.Sample(i, j)
			remote := nodes[j].Coordinate()
			remoteErr := nodes[j].ErrorEstimate()
			if rnp, ok := nodes[i].(*RNP); ok {
				rnp.UpdateFrom(int64(j), remote, remoteErr, rtt)
			} else {
				nodes[i].Update(remote, remoteErr, rtt)
			}
		}
		if round >= driftStart {
			var roundDrift float64
			for i := range nodes {
				cur := nodes[i].Coordinate()
				roundDrift += cur.Pos.Dist(prev[i].Pos) + absFloat(cur.Height-prev[i].Height)
			}
			driftSum += roundDrift / float64(n)
			driftRounds++
		}
	}

	emb := &Embedding{Coords: make([]Coordinate, n)}
	stats := &EmbedStats{}
	for i, node := range nodes {
		emb.Coords[i] = node.Coordinate()
		stats.MeanErrorEstimate += node.ErrorEstimate()
	}
	stats.MeanErrorEstimate /= float64(n)
	if driftRounds > 0 {
		stats.DriftMsPerRound = driftSum / float64(driftRounds)
	}
	return emb, stats, nil
}

// ErrorSummary describes how well an embedding predicts the true matrix.
type ErrorSummary struct {
	// MedianAbsMs is the median of |predicted − actual| over all pairs.
	MedianAbsMs float64
	// P90AbsMs is the 90th percentile of the absolute error.
	P90AbsMs float64
	// MedianRel is the median of |predicted − actual| / actual.
	MedianRel float64
	// FracUnder10ms is the fraction of pairs predicted within 10 ms, the
	// accuracy bar the paper states RNP clears for a majority of pairs.
	FracUnder10ms float64
}

// EvalError compares an embedding's predictions to the ground-truth
// matrix over all node pairs.
func EvalError(e *Embedding, m *latency.Matrix) (ErrorSummary, error) {
	if e.N() != m.N() {
		return ErrorSummary{}, fmt.Errorf("coord: embedding has %d nodes, matrix %d", e.N(), m.N())
	}
	var absErrs, relErrs []float64
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			actual := m.RTT(i, j)
			pred := e.Predict(i, j)
			ae := absFloat(pred - actual)
			absErrs = append(absErrs, ae)
			if actual > 0 {
				relErrs = append(relErrs, ae/actual)
			}
		}
	}
	var s ErrorSummary
	var err error
	if s.MedianAbsMs, err = stats.Median(absErrs); err != nil {
		return s, err
	}
	if s.P90AbsMs, err = stats.Percentile(absErrs, 90); err != nil {
		return s, err
	}
	if s.MedianRel, err = stats.Median(relErrs); err != nil {
		return s, err
	}
	s.FracUnder10ms = stats.FractionBelow(absErrs, 10)
	return s, nil
}

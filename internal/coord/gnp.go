package coord

import (
	"fmt"
	"math/rand"

	"github.com/georep/georep/internal/vec"
)

// GNP (Global Network Positioning) embeds a fixed set of landmark nodes
// first and then positions every other node against the landmarks only.
// It is centralized and included as the related-work baseline the paper
// contrasts RNP with ("in contrast to GNP, RNP does not require
// preconfigured landmarks").

// GNPConfig controls a GNP embedding.
type GNPConfig struct {
	// Dims is the dimensionality of the coordinate space.
	Dims int
	// Landmarks is the number of landmark nodes (chosen as the first
	// indices of the provided RTT function's domain by the caller, or
	// randomly via ChooseLandmarks).
	Landmarks int
	// Iterations bounds the gradient descent used for both phases.
	Iterations int
}

// DefaultGNPConfig returns the configuration used in the GNP paper's
// evaluation: a handful of landmarks in a low-dimensional space.
func DefaultGNPConfig() GNPConfig {
	return GNPConfig{Dims: 5, Landmarks: 15, Iterations: 400}
}

// GNPEmbed computes coordinates for n nodes given a pairwise RTT oracle.
// landmarks lists node indices acting as landmarks; the remaining nodes
// are positioned against the landmarks only, as in the original system.
func GNPEmbed(r *rand.Rand, n int, landmarks []int, rtt func(i, j int) float64, cfg GNPConfig) ([]Coordinate, error) {
	if cfg.Dims <= 0 {
		return nil, fmt.Errorf("coord: gnp dims must be positive, got %d", cfg.Dims)
	}
	if len(landmarks) < cfg.Dims+1 {
		return nil, fmt.Errorf("coord: need at least dims+1=%d landmarks, got %d", cfg.Dims+1, len(landmarks))
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("coord: gnp iterations must be positive, got %d", cfg.Iterations)
	}
	isLandmark := make(map[int]bool, len(landmarks))
	for _, l := range landmarks {
		if l < 0 || l >= n {
			return nil, fmt.Errorf("coord: landmark %d out of range [0,%d)", l, n)
		}
		if isLandmark[l] {
			return nil, fmt.Errorf("coord: duplicate landmark %d", l)
		}
		isLandmark[l] = true
	}

	// Phase 1: embed landmarks against each other by stress-minimizing
	// gradient descent from a random start.
	lpos := make([]vec.Vec, len(landmarks))
	for i := range lpos {
		lpos[i] = randomUnit(r, cfg.Dims).Scale(50 + r.Float64()*50)
	}
	for it := 0; it < cfg.Iterations; it++ {
		lr := 0.05 * (1 - float64(it)/float64(cfg.Iterations+1))
		for a := range landmarks {
			grad := vec.New(cfg.Dims)
			for b := range landmarks {
				if a == b {
					continue
				}
				target := rtt(landmarks[a], landmarks[b])
				d := lpos[a].Dist(lpos[b])
				if d < 1e-9 {
					lpos[a].AddScaled(0.1, randomUnit(r, cfg.Dims))
					continue
				}
				diff := d - target
				dir := lpos[a].Sub(lpos[b]).Unit()
				grad.AddScaled(diff, dir)
			}
			lpos[a].AddScaled(-lr, grad)
		}
	}

	// Phase 2: position every other node against the landmarks.
	coords := make([]Coordinate, n)
	for li, l := range landmarks {
		coords[l] = Coordinate{Pos: lpos[li].Clone()}
	}
	for i := 0; i < n; i++ {
		if isLandmark[i] {
			continue
		}
		pos := randomUnit(r, cfg.Dims).Scale(50)
		for it := 0; it < cfg.Iterations/2; it++ {
			lr := 0.1 * (1 - float64(it)/float64(cfg.Iterations/2+1))
			grad := vec.New(cfg.Dims)
			for li, l := range landmarks {
				target := rtt(i, l)
				d := pos.Dist(lpos[li])
				if d < 1e-9 {
					pos.AddScaled(0.1, randomUnit(r, cfg.Dims))
					continue
				}
				diff := d - target
				grad.AddScaled(diff, pos.Sub(lpos[li]).Unit())
			}
			pos.AddScaled(-lr/float64(len(landmarks)), grad.Scale(float64(len(landmarks))))
		}
		coords[i] = Coordinate{Pos: pos}
	}
	return coords, nil
}

// ChooseLandmarks picks k well-spread landmark indices using the
// farthest-point heuristic: start from a random node, then repeatedly add
// the node whose minimum RTT to the chosen set is largest.
func ChooseLandmarks(r *rand.Rand, n, k int, rtt func(i, j int) float64) ([]int, error) {
	if k <= 0 || k > n {
		return nil, fmt.Errorf("coord: cannot choose %d landmarks from %d nodes", k, n)
	}
	chosen := []int{r.Intn(n)}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = rtt(i, chosen[0])
	}
	for len(chosen) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				in := false
				for _, c := range chosen {
					if c == i {
						in = true
						break
					}
				}
				if !in {
					best, bestD = i, minDist[i]
				}
			}
		}
		chosen = append(chosen, best)
		for i := range minDist {
			if d := rtt(i, best); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen, nil
}

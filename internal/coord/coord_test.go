package coord

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/georep/georep/internal/vec"
)

func TestCoordinateDistance(t *testing.T) {
	a := Coordinate{Pos: vec.Of(0, 0), Height: 2}
	b := Coordinate{Pos: vec.Of(3, 4), Height: 1}
	if got := a.DistanceTo(b); got != 8 { // 5 + 2 + 1
		t.Errorf("DistanceTo = %v, want 8", got)
	}
	if got, want := a.DistanceTo(b), b.DistanceTo(a); got != want {
		t.Errorf("asymmetric: %v vs %v", got, want)
	}
}

func TestCoordinateClone(t *testing.T) {
	a := Coordinate{Pos: vec.Of(1, 2), Height: 3}
	c := a.Clone()
	c.Pos[0] = 99
	c.Height = 0
	if a.Pos[0] != 1 || a.Height != 3 {
		t.Errorf("Clone aliases original: %+v", a)
	}
}

func TestCoordinateIsValid(t *testing.T) {
	tests := []struct {
		name string
		c    Coordinate
		want bool
	}{
		{"ok", Coordinate{Pos: vec.Of(1, 2), Height: 0.5}, true},
		{"nan pos", Coordinate{Pos: vec.Of(math.NaN(), 2), Height: 0.5}, false},
		{"inf pos", Coordinate{Pos: vec.Of(math.Inf(1), 2), Height: 0.5}, false},
		{"nan height", Coordinate{Pos: vec.Of(1, 2), Height: math.NaN()}, false},
		{"negative height", Coordinate{Pos: vec.Of(1, 2), Height: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.IsValid(); got != tt.want {
				t.Errorf("IsValid = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgorithmVivaldi.String() != "vivaldi" || AlgorithmRNP.String() != "rnp" {
		t.Error("algorithm names changed")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm should still produce a string")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range []Algorithm{AlgorithmVivaldi, AlgorithmRNP} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: got %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestNewNodeValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := NewNode(AlgorithmVivaldi, 0, r); err == nil {
		t.Error("dims=0 should fail")
	}
	if _, err := NewNode(Algorithm(42), 3, r); err == nil {
		t.Error("unknown algorithm should fail")
	}
	for _, a := range []Algorithm{AlgorithmVivaldi, AlgorithmRNP} {
		n, err := NewNode(a, 3, r)
		if err != nil {
			t.Fatalf("NewNode(%v): %v", a, err)
		}
		if got := n.Coordinate().Pos.Dim(); got != 3 {
			t.Errorf("dims = %d, want 3", got)
		}
		if n.ErrorEstimate() <= 0 {
			t.Errorf("fresh node error estimate = %v, want > 0", n.ErrorEstimate())
		}
	}
}

// Two nodes repeatedly measuring each other should converge so that the
// coordinate distance approximates the true RTT.
func TestTwoNodeConvergence(t *testing.T) {
	for _, algo := range []Algorithm{AlgorithmVivaldi, AlgorithmRNP} {
		t.Run(algo.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			a, _ := NewNode(algo, 2, rand.New(rand.NewSource(1)))
			b, _ := NewNode(algo, 2, rand.New(rand.NewSource(2)))
			const rtt = 80.0
			for i := 0; i < 500; i++ {
				noisy := rtt * (1 + r.NormFloat64()*0.02)
				a.Update(b.Coordinate(), b.ErrorEstimate(), noisy)
				b.Update(a.Coordinate(), a.ErrorEstimate(), noisy)
			}
			got := a.Coordinate().DistanceTo(b.Coordinate())
			if math.Abs(got-rtt) > rtt*0.15 {
				t.Errorf("converged distance %v, want ~%v", got, rtt)
			}
		})
	}
}

func TestUpdateIgnoresGarbage(t *testing.T) {
	for _, algo := range []Algorithm{AlgorithmVivaldi, AlgorithmRNP} {
		t.Run(algo.String(), func(t *testing.T) {
			n, _ := NewNode(algo, 2, rand.New(rand.NewSource(3)))
			before := n.Coordinate()
			n.Update(Coordinate{Pos: vec.Of(math.NaN(), 0)}, 0.5, 50)
			n.Update(Coordinate{Pos: vec.Of(1, 1)}, 0.5, -5)
			n.Update(Coordinate{Pos: vec.Of(1, 1)}, 0.5, 0)
			after := n.Coordinate()
			if !before.Pos.Equal(after.Pos) || before.Height != after.Height {
				t.Error("garbage updates moved the coordinate")
			}
		})
	}
}

func TestVivaldiCollocatedNodesSeparate(t *testing.T) {
	a := NewVivaldi(2, rand.New(rand.NewSource(4)))
	b := NewVivaldi(2, rand.New(rand.NewSource(5)))
	// Both start at the origin; an update with a positive RTT must move
	// them apart via the random-direction rule.
	a.Update(b.Coordinate(), b.ErrorEstimate(), 50)
	if a.Coordinate().Pos.IsZero() {
		t.Error("co-located node did not separate")
	}
	if a.Updates() != 1 {
		t.Errorf("Updates = %d, want 1", a.Updates())
	}
}

func TestVivaldiErrorEstimateDecreases(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := NewVivaldi(2, rand.New(rand.NewSource(7)))
	b := NewVivaldi(2, rand.New(rand.NewSource(8)))
	start := a.ErrorEstimate()
	for i := 0; i < 300; i++ {
		rtt := 60 * (1 + r.NormFloat64()*0.01)
		a.Update(b.Coordinate(), b.ErrorEstimate(), rtt)
		b.Update(a.Coordinate(), a.ErrorEstimate(), rtt)
	}
	if got := a.ErrorEstimate(); got >= start {
		t.Errorf("error estimate %v did not drop from %v", got, start)
	}
}

func TestVivaldiHeightStaysPositive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := NewVivaldi(2, rand.New(rand.NewSource(10)))
	b := NewVivaldi(2, rand.New(rand.NewSource(11)))
	for i := 0; i < 500; i++ {
		a.Update(b.Coordinate(), b.ErrorEstimate(), 1+r.Float64())
	}
	if h := a.Coordinate().Height; h < minHeight {
		t.Errorf("height %v fell below floor %v", h, minHeight)
	}
}

func TestRNPPeerHistoryBounded(t *testing.T) {
	n := NewRNP(2, rand.New(rand.NewSource(12)))
	remote := Coordinate{Pos: vec.Of(10, 0), Height: 1}
	for i := 0; i < 100; i++ {
		n.UpdateFrom(7, remote, 0.5, 50)
	}
	if n.PeerCount() != 1 {
		t.Fatalf("PeerCount = %d, want 1", n.PeerCount())
	}
	p := n.peers[peerKey(7)]
	if len(p.samples) > rnpHistoryPerPeer {
		t.Errorf("history %d exceeds cap %d", len(p.samples), rnpHistoryPerPeer)
	}
}

func TestRNPPeerTableEviction(t *testing.T) {
	n := NewRNP(2, rand.New(rand.NewSource(13)))
	for i := 0; i < rnpMaxPeers*2; i++ {
		remote := Coordinate{Pos: vec.Of(float64(i), 1), Height: 1}
		n.UpdateFrom(int64(i), remote, 0.5, 30)
	}
	if n.PeerCount() > rnpMaxPeers {
		t.Errorf("peer table %d exceeds cap %d", n.PeerCount(), rnpMaxPeers)
	}
	// The newest peer must have survived.
	if _, ok := n.peers[peerKey(rnpMaxPeers*2-1)]; !ok {
		t.Error("most recent peer evicted")
	}
}

func TestRNPReliabilityDiscountsJitter(t *testing.T) {
	stable := &rnpPeer{}
	jittery := &rnpPeer{}
	r := rand.New(rand.NewSource(14))
	for i := 0; i < rnpHistoryPerPeer; i++ {
		stable.samples = append(stable.samples, rnpSample{rtt: 50 + r.Float64()})
		jittery.samples = append(jittery.samples, rnpSample{rtt: 50 + r.Float64()*120})
	}
	if rs, rj := stable.reliability(), jittery.reliability(); rs <= rj {
		t.Errorf("stable reliability %v should exceed jittery %v", rs, rj)
	}
}

func TestRNPFilteredRTTIsRobust(t *testing.T) {
	p := &rnpPeer{}
	for _, v := range []float64{50, 51, 49, 50, 400} { // one spike
		p.samples = append(p.samples, rnpSample{rtt: v})
	}
	if got := p.filteredRTT(); got < 45 || got > 55 {
		t.Errorf("filtered RTT %v should ignore the spike", got)
	}
	empty := &rnpPeer{}
	if got := empty.filteredRTT(); got != 0 {
		t.Errorf("empty history filtered RTT = %v, want 0", got)
	}
}

func TestHashCoordinateDistinguishes(t *testing.T) {
	a := Coordinate{Pos: vec.Of(1, 2), Height: 1}
	b := Coordinate{Pos: vec.Of(5, -3), Height: 1}
	if hashCoordinate(a) == hashCoordinate(b) {
		t.Error("distinct coordinates hashed equal")
	}
	if hashCoordinate(a) != hashCoordinate(a.Clone()) {
		t.Error("identical coordinates hashed differently")
	}
}

// Property: node coordinates remain valid (finite, non-negative height)
// under arbitrary bounded measurement streams.
func TestQuickNodesStayValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		algo := AlgorithmVivaldi
		if seed%2 == 0 {
			algo = AlgorithmRNP
		}
		n, err := NewNode(algo, 1+r.Intn(4), rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			d := n.Coordinate().Pos.Dim()
			remote := Coordinate{Pos: randomUnit(r, d).Scale(r.Float64() * 200), Height: r.Float64() * 10}
			n.Update(remote, r.Float64(), r.Float64()*500+0.1)
		}
		c := n.Coordinate()
		return c.IsValid() && n.ErrorEstimate() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

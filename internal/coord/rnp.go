package coord

import (
	"math"
	"math/rand"
	"sort"

	"github.com/georep/georep/internal/stats"
	"github.com/georep/georep/internal/vec"
)

// RNP implementation parameters.
const (
	// rnpHistoryPerPeer bounds the retained RTT samples per neighbour.
	rnpHistoryPerPeer = 8
	// rnpMaxPeers bounds the number of neighbours remembered; the least
	// recently heard-from neighbour is evicted beyond this.
	rnpMaxPeers = 48
	// rnpRefitEvery triggers a retrospective re-fit after this many
	// online updates.
	rnpRefitEvery = 16
	// rnpRefitSteps is the number of gradient steps per re-fit.
	rnpRefitSteps = 4
	// rnpBaseStep is the online learning rate before reliability scaling.
	rnpBaseStep = 0.25
)

// rnpSample is one retained measurement toward a neighbour.
type rnpSample struct {
	rtt float64
}

// rnpPeer aggregates everything remembered about a neighbour: its most
// recent coordinate and a bounded window of RTT samples. The variance of
// the window drives the reliability weighting.
type rnpPeer struct {
	coord   Coordinate
	samples []rnpSample // ring buffer, newest last
	lastUse int         // logical clock of the last measurement
}

// reliability maps the window's coefficient of variation to (0, 1]: a
// stable neighbour (low spread relative to its median) is trusted fully,
// a jittery one is discounted. This is the "consume information
// differently according to its reliability" behaviour RNP claims over
// Vivaldi.
func (p *rnpPeer) reliability() float64 {
	if len(p.samples) < 2 {
		return 0.5 // unknown stability: medium trust
	}
	var acc stats.Accumulator
	for _, s := range p.samples {
		acc.Add(s.rtt)
	}
	m := acc.Mean()
	if m <= 0 {
		return 0.5
	}
	cv := acc.StdDev() / m
	return 1 / (1 + 4*cv)
}

// filteredRTT returns the window median, a robust estimate of the
// neighbour's true RTT that ignores transient congestion spikes.
func (p *rnpPeer) filteredRTT() float64 {
	xs := make([]float64, len(p.samples))
	for i, s := range p.samples {
		xs[i] = s.rtt
	}
	med, err := stats.Median(xs)
	if err != nil {
		return 0
	}
	return med
}

// RNP is one node of the Retrospective Network Positioning system. Like
// Vivaldi it is decentralized and landmark-free; unlike Vivaldi it keeps
// a bounded measurement history and periodically re-fits its coordinate
// against the filtered history, which damps oscillation on unstable
// platforms such as PlanetLab.
type RNP struct {
	coord    Coordinate
	localErr float64
	rng      *rand.Rand
	peers    map[peerKey]*rnpPeer
	clock    int
	updates  int
}

// peerKey identifies a neighbour by its coordinate provenance. RNP nodes
// do not learn network identities of their peers in this simulation, so
// peers are distinguished by the pointer-free key the caller supplies via
// SetPeerKey, or an automatic sequence otherwise.
type peerKey int64

var _ Node = (*RNP)(nil)

// NewRNP returns an RNP node at the origin.
func NewRNP(dims int, r *rand.Rand) *RNP {
	return &RNP{
		coord:    Coordinate{Pos: vec.New(dims), Height: minHeight},
		localErr: 1.0,
		rng:      r,
		peers:    make(map[peerKey]*rnpPeer),
	}
}

// UpdateFrom folds in one measurement attributed to the neighbour with
// the given identity, retaining it in the history window.
func (n *RNP) UpdateFrom(peerID int64, remote Coordinate, remoteErr, rttMs float64) {
	if rttMs <= 0 || !remote.IsValid() {
		return
	}
	n.clock++
	key := peerKey(peerID)
	p, ok := n.peers[key]
	if !ok {
		p = &rnpPeer{}
		n.evictIfFull()
		n.peers[key] = p
	}
	p.coord = remote.Clone()
	p.lastUse = n.clock
	p.samples = append(p.samples, rnpSample{rtt: rttMs})
	if len(p.samples) > rnpHistoryPerPeer {
		p.samples = p.samples[len(p.samples)-rnpHistoryPerPeer:]
	}

	n.onlineStep(p, remoteErr)
	n.updates++
	if n.updates%rnpRefitEvery == 0 {
		n.refit()
	}
}

// Update implements Node. Without an explicit peer identity the remote
// coordinate's quantized position is used to recognize repeat neighbours.
func (n *RNP) Update(remote Coordinate, remoteErr, rttMs float64) {
	n.UpdateFrom(hashCoordinate(remote), remote, remoteErr, rttMs)
}

// onlineStep performs a reliability-weighted spring update toward
// consistency with the peer's filtered RTT.
func (n *RNP) onlineStep(p *rnpPeer, remoteErr float64) {
	target := p.filteredRTT()
	if target <= 0 {
		return
	}
	predicted := n.coord.DistanceTo(p.coord)

	w := 0.5
	if remoteErr >= 0 && n.localErr+remoteErr > 0 {
		w = n.localErr / (n.localErr + remoteErr)
	}
	rel := p.reliability()

	es := absFloat(predicted-target) / target
	alpha := vivaldiCE * w * rel
	n.localErr = es*alpha + n.localErr*(1-alpha)
	if n.localErr > 2 {
		n.localErr = 2
	}

	force := rnpBaseStep * w * rel * (target - predicted)
	dir := n.coord.Pos.Sub(p.coord.Pos)
	if dir.Norm() < 1e-9 {
		dir = randomUnit(n.rng, n.coord.Pos.Dim())
	} else {
		dir = dir.Unit()
	}
	n.coord.Pos.AddScaled(force, dir)
	if predicted > 0 {
		hShare := (n.coord.Height + p.coord.Height) / predicted
		n.coord.Height += force * hShare * 0.5
		if n.coord.Height < minHeight {
			n.coord.Height = minHeight
		}
	}
}

// refit is the retrospective pass: a few gradient-descent steps that move
// the coordinate to minimize the reliability-weighted squared error
// against every retained neighbour's filtered RTT. Because it optimizes
// against the whole window at once it converges where pure online updates
// oscillate.
func (n *RNP) refit() {
	if len(n.peers) < 2 {
		return
	}
	dims := n.coord.Pos.Dim()
	// Iterate peers in a fixed order: map order is randomized and the
	// floating-point gradient sum must be reproducible for a given seed.
	keys := make([]peerKey, 0, len(n.peers))
	for k := range n.peers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for step := 0; step < rnpRefitSteps; step++ {
		grad := vec.New(dims)
		var hGrad, totalW float64
		for _, k := range keys {
			p := n.peers[k]
			target := p.filteredRTT()
			if target <= 0 {
				continue
			}
			rel := p.reliability()
			predicted := n.coord.DistanceTo(p.coord)
			diff := predicted - target // >0 means too far in coordinate space
			dir := n.coord.Pos.Sub(p.coord.Pos)
			if dir.Norm() < 1e-9 {
				dir = randomUnit(n.rng, dims)
			} else {
				dir = dir.Unit()
			}
			// d(predicted)/d(pos) = dir; d(predicted)/d(height) = 1.
			grad.AddScaled(rel*diff, dir)
			hGrad += rel * diff
			totalW += rel
		}
		if totalW == 0 {
			return
		}
		lr := 0.3 / totalW
		n.coord.Pos.AddScaled(-lr, grad)
		n.coord.Height -= lr * hGrad * 0.25
		if n.coord.Height < minHeight {
			n.coord.Height = minHeight
		}
	}
}

// evictIfFull drops the least recently heard-from neighbour when the peer
// table is at capacity.
func (n *RNP) evictIfFull() {
	if len(n.peers) < rnpMaxPeers {
		return
	}
	var victim peerKey
	oldest := math.MaxInt
	for k, p := range n.peers {
		// Tie-break on the key so eviction is deterministic despite
		// randomized map iteration order.
		if p.lastUse < oldest || (p.lastUse == oldest && k < victim) {
			oldest = p.lastUse
			victim = k
		}
	}
	delete(n.peers, victim)
}

// Coordinate returns a copy of the node's current coordinate.
func (n *RNP) Coordinate() Coordinate { return n.coord.Clone() }

// ErrorEstimate returns the node's relative error estimate.
func (n *RNP) ErrorEstimate() float64 { return n.localErr }

// PeerCount returns how many neighbours the node currently remembers.
func (n *RNP) PeerCount() int { return len(n.peers) }

// hashCoordinate derives a stable identity from a coordinate by
// quantizing its components; good enough to recognize a repeat neighbour
// whose coordinate moved only slightly between contacts is NOT the goal —
// distinct nodes simply need distinct histories most of the time.
func hashCoordinate(c Coordinate) int64 {
	var h int64 = 1469598103934665603
	mix := func(x float64) {
		q := int64(x * 16)
		h ^= q
		h *= 1099511628211
	}
	for _, x := range c.Pos {
		mix(x)
	}
	mix(c.Height)
	return h
}

package coord

import (
	"math/rand"

	"github.com/georep/georep/internal/vec"
)

// Vivaldi tuning constants from Dabek et al. (SIGCOMM 2004), §3.
const (
	// vivaldiCE dampens how quickly the local error estimate moves.
	vivaldiCE = 0.25
	// vivaldiCC scales the adaptive timestep.
	vivaldiCC = 0.25
	// minHeight keeps the height component positive as required by the
	// height-vector model.
	minHeight = 0.1
)

// Vivaldi is one node of the decentralized Vivaldi coordinate system with
// the adaptive timestep and height-vector extensions. It is not safe for
// concurrent use; each simulated node owns one instance.
type Vivaldi struct {
	coord    Coordinate
	localErr float64
	rng      *rand.Rand
	updates  int
}

var _ Node = (*Vivaldi)(nil)

// NewVivaldi returns a node at the origin with maximal error estimate.
func NewVivaldi(dims int, r *rand.Rand) *Vivaldi {
	return &Vivaldi{
		coord:    Coordinate{Pos: vec.New(dims), Height: minHeight},
		localErr: 1.0,
		rng:      r,
	}
}

// Update applies one spring-relaxation step toward consistency with the
// observed RTT, following the VIVALDI(rtt, xj, ej) procedure of the paper.
func (v *Vivaldi) Update(remote Coordinate, remoteErr, rttMs float64) {
	if rttMs <= 0 || !remote.IsValid() {
		return // measurement is unusable; keep the current state
	}
	if remoteErr < 0 {
		remoteErr = 0
	}

	predicted := v.coord.DistanceTo(remote)

	// Sample weight balances local and remote confidence.
	w := 0.5
	if v.localErr+remoteErr > 0 {
		w = v.localErr / (v.localErr + remoteErr)
	}

	// Relative error of this sample.
	es := 0.0
	if rttMs > 0 {
		es = absFloat(predicted-rttMs) / rttMs
	}

	// Update the local error estimate with an EWMA weighted by w.
	alpha := vivaldiCE * w
	v.localErr = es*alpha + v.localErr*(1-alpha)
	if v.localErr > 2 {
		v.localErr = 2
	}

	// Adaptive timestep and force application.
	delta := vivaldiCC * w
	force := delta * (rttMs - predicted)

	dir := v.coord.Pos.Sub(remote.Pos)
	if dir.Norm() < 1e-9 {
		// Co-located nodes: pick a random direction to separate.
		dir = randomUnit(v.rng, v.coord.Pos.Dim())
	} else {
		dir = dir.Unit()
	}
	v.coord.Pos.AddScaled(force, dir)

	// Height absorbs the share of the force proportional to how much of
	// the predicted distance the heights account for.
	if predicted > 0 {
		hShare := (v.coord.Height + remote.Height) / predicted
		v.coord.Height += force * hShare * 0.5
		if v.coord.Height < minHeight {
			v.coord.Height = minHeight
		}
	}
	v.updates++
}

// Coordinate returns a copy of the node's current coordinate.
func (v *Vivaldi) Coordinate() Coordinate { return v.coord.Clone() }

// ErrorEstimate returns the node's current relative error estimate.
func (v *Vivaldi) ErrorEstimate() float64 { return v.localErr }

// Updates returns how many measurements the node has consumed.
func (v *Vivaldi) Updates() int { return v.updates }

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

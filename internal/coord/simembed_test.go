package coord

import (
	"math/rand"
	"testing"
)

func TestEmbedOverSimnetValidation(t *testing.T) {
	m := testMatrix(t, 15, 60)
	cfg := DefaultEmbedConfig()
	r := rand.New(rand.NewSource(1))
	if _, err := EmbedOverSimnet(r, m, cfg, 0, 100); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := EmbedOverSimnet(r, m, cfg, 1000, 0); err == nil {
		t.Error("zero gossip interval should fail")
	}
	bad := cfg
	bad.Dims = 0
	if _, err := EmbedOverSimnet(r, m, bad, 1000, 100); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestEmbedOverSimnetConverges(t *testing.T) {
	m := testMatrix(t, 50, 61)
	for _, algo := range []Algorithm{AlgorithmVivaldi, AlgorithmRNP} {
		t.Run(algo.String(), func(t *testing.T) {
			cfg := DefaultEmbedConfig()
			cfg.Algorithm = algo
			// ~300 gossips per node: 300 × 1000ms mean interval over
			// 300k simulated ms.
			emb, err := EmbedOverSimnet(rand.New(rand.NewSource(2)), m, cfg, 300_000, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if emb.N() != m.N() {
				t.Fatalf("embedding has %d nodes", emb.N())
			}
			for i, c := range emb.Coords {
				if !c.IsValid() {
					t.Fatalf("node %d invalid coordinate", i)
				}
				if c.Pos.IsZero() {
					t.Fatalf("node %d never gossiped", i)
				}
			}
			s, err := EvalError(emb, m)
			if err != nil {
				t.Fatal(err)
			}
			// Async staleness costs some accuracy vs the synchronous
			// loop, but the embedding must remain useful.
			if s.MedianRel > 0.4 {
				t.Errorf("median relative error %v too high", s.MedianRel)
			}
		})
	}
}

func TestEmbedOverSimnetDeterministic(t *testing.T) {
	m := testMatrix(t, 25, 62)
	cfg := DefaultEmbedConfig()
	run := func() *Embedding {
		emb, err := EmbedOverSimnet(rand.New(rand.NewSource(3)), m, cfg, 60_000, 800)
		if err != nil {
			t.Fatal(err)
		}
		return emb
	}
	a, b := run(), run()
	for i := range a.Coords {
		if !a.Coords[i].Pos.Equal(b.Coords[i].Pos) {
			t.Fatalf("node %d differs across identical runs", i)
		}
	}
}

func TestEmbedOverSimnetComparableToSynchronous(t *testing.T) {
	m := testMatrix(t, 60, 63)
	cfg := DefaultEmbedConfig()
	cfg.Rounds = 300

	syncEmb, err := Embed(rand.New(rand.NewSource(4)), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	asyncEmb, err := EmbedOverSimnet(rand.New(rand.NewSource(4)), m, cfg, 300_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	syncErr, err := EvalError(syncEmb, m)
	if err != nil {
		t.Fatal(err)
	}
	asyncErr, err := EvalError(asyncEmb, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sync rel %.3f vs async rel %.3f", syncErr.MedianRel, asyncErr.MedianRel)
	// Asynchrony (stale peer coordinates) may cost accuracy but not
	// break the embedding: within 2x of the synchronous result.
	if asyncErr.MedianRel > syncErr.MedianRel*2 {
		t.Errorf("async embedding (%v) far worse than synchronous (%v)",
			asyncErr.MedianRel, syncErr.MedianRel)
	}
}

// Package coord implements the network coordinate systems the paper
// builds on. A network coordinate system assigns each node a point in a
// low-dimensional space such that the Euclidean distance between two
// nodes' points approximates their round-trip time.
//
// Three systems are provided:
//
//   - Vivaldi (Dabek et al., SIGCOMM 2004): the decentralized spring
//     relaxation the paper cites as the representative baseline, with the
//     adaptive timestep and the height-vector extension.
//   - RNP (Ping et al., GridPeer 2011): the authors' "Retrospective
//     Network Positioning". The original paper gives only the design
//     goals — no landmarks, decentralized, consume measurements according
//     to their reliability, re-fit retrospectively against retained
//     history. This implementation realizes those goals: each node keeps
//     a bounded per-neighbour sample history, weights online updates by a
//     variance-derived reliability score, and periodically re-fits its
//     coordinate against the retained samples.
//   - GNP (Ng & Zhang, INFOCOM 2002): the landmark-based system discussed
//     in related work, included as a baseline.
package coord

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/georep/georep/internal/vec"
)

// Coordinate is a position in the latency space: a Euclidean component
// plus a non-negative height capturing access-link delay, as in the
// Vivaldi height model. With Height zero it degrades to plain Euclidean
// coordinates.
type Coordinate struct {
	Pos    vec.Vec
	Height float64
}

// NewCoordinate returns the origin of a d-dimensional space.
func NewCoordinate(d int) Coordinate {
	return Coordinate{Pos: vec.New(d)}
}

// Clone returns an independent copy of c.
func (c Coordinate) Clone() Coordinate {
	return Coordinate{Pos: c.Pos.Clone(), Height: c.Height}
}

// DistanceTo predicts the RTT in milliseconds between two coordinates:
// the Euclidean distance between positions plus both heights.
func (c Coordinate) DistanceTo(o Coordinate) float64 {
	return c.Pos.Dist(o.Pos) + c.Height + o.Height
}

// IsValid reports whether the coordinate contains only finite values and
// a non-negative height.
func (c Coordinate) IsValid() bool {
	return c.Pos.IsFinite() && !math.IsNaN(c.Height) && !math.IsInf(c.Height, 0) && c.Height >= 0
}

// Node is a participant in a decentralized coordinate system. An Update
// consumes one RTT measurement to a remote node along with the remote
// node's current coordinate and error estimate.
type Node interface {
	// Update folds one measurement into the node's coordinate.
	Update(remote Coordinate, remoteErr, rttMs float64)
	// Coordinate returns a copy of the node's current coordinate.
	Coordinate() Coordinate
	// ErrorEstimate returns the node's local relative error estimate in
	// [0, 1+]; lower means the node trusts its own coordinate more.
	ErrorEstimate() float64
}

// Algorithm selects a coordinate system implementation.
type Algorithm int

// Available coordinate algorithms.
const (
	AlgorithmVivaldi Algorithm = iota + 1
	AlgorithmRNP
)

// String returns the lower-case algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmVivaldi:
		return "vivaldi"
	case AlgorithmRNP:
		return "rnp"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name produced by String back to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "vivaldi":
		return AlgorithmVivaldi, nil
	case "rnp":
		return AlgorithmRNP, nil
	default:
		return 0, fmt.Errorf("coord: unknown algorithm %q", s)
	}
}

// NewNode constructs a node of the chosen algorithm with the given
// dimensionality and per-node RNG.
func NewNode(a Algorithm, dims int, r *rand.Rand) (Node, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("coord: dims must be positive, got %d", dims)
	}
	switch a {
	case AlgorithmVivaldi:
		return NewVivaldi(dims, r), nil
	case AlgorithmRNP:
		return NewRNP(dims, r), nil
	default:
		return nil, fmt.Errorf("coord: unknown algorithm %v", a)
	}
}

// randomUnit returns a uniformly random direction, used to separate
// co-located nodes.
func randomUnit(r *rand.Rand, d int) vec.Vec {
	for {
		v := vec.New(d)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		if n := v.Norm(); n > 1e-9 {
			v.ScaleInPlace(1 / n)
			return v
		}
	}
}

package coord

import (
	"fmt"
	"math/rand"

	"github.com/georep/georep/internal/latency"
	"github.com/georep/georep/internal/simnet"
)

// EmbedOverSimnet runs the coordinate embedding through the
// discrete-event simulator instead of synchronous rounds: every node
// gossips on its own Poisson clock, measurements take (simulated) time
// to complete, and the remote coordinate a node learns is the one the
// peer had when it ANSWERED — stale by half an RTT, exactly as in a real
// deployment. This is the paper's evaluation methodology ("this
// simulator can emulate communications between nodes based on real
// network traffic data ... the simulator can assign synthetic
// coordinates to all the 226 nodes using RNP") reproduced faithfully;
// the synchronous Embed is the fast approximation.
//
// durationMs is the simulated wall-clock length; meanGossipMs the mean
// exponential inter-gossip interval per node.
func EmbedOverSimnet(r *rand.Rand, m *latency.Matrix, cfg EmbedConfig, durationMs, meanGossipMs float64) (*Embedding, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if durationMs <= 0 || meanGossipMs <= 0 {
		return nil, fmt.Errorf("coord: need positive duration (%v) and gossip interval (%v)",
			durationMs, meanGossipMs)
	}
	n := m.N()
	nodes := make([]Node, n)
	for i := range nodes {
		node, err := NewNode(cfg.Algorithm, cfg.Dims, rand.New(rand.NewSource(r.Int63())))
		if err != nil {
			return nil, err
		}
		nodes[i] = node
	}

	// Measurement noise is injected through the latency oracle, so the
	// RTT the simulator measures IS the noisy sample.
	sampler := latency.NewSampler(m, cfg.NoiseFrac, r)
	sim := simnet.New(func(a, b simnet.NodeID) float64 {
		return sampler.Sample(int(a), int(b))
	})

	// gossipReply carries the responder's coordinate state at answer
	// time.
	type gossipReply struct {
		coord Coordinate
		err   float64
	}
	for i := 0; i < n; i++ {
		i := i
		handler := func(_ *simnet.Simulator, _ simnet.NodeID, _ any) any {
			return gossipReply{coord: nodes[i].Coordinate(), err: nodes[i].ErrorEstimate()}
		}
		if err := sim.AddNode(simnet.NodeID(i), nil, handler); err != nil {
			return nil, err
		}
	}

	// Each node's gossip loop: fire, measure a random peer, update,
	// reschedule. Scheduling randomness comes from one shared seeded
	// source; the simulator itself is deterministic.
	var schedule func(i int, delay float64) error
	schedule = func(i int, delay float64) error {
		return sim.After(delay, func() {
			if sim.Now() >= durationMs {
				return
			}
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			callErr := sim.Call(simnet.NodeID(i), simnet.NodeID(j), nil, func(resp any, rtt float64) {
				reply, ok := resp.(gossipReply)
				if !ok {
					return
				}
				if rnp, isRNP := nodes[i].(*RNP); isRNP {
					rnp.UpdateFrom(int64(j), reply.coord, reply.err, rtt)
				} else {
					nodes[i].Update(reply.coord, reply.err, rtt)
				}
			})
			if callErr != nil {
				return // unreachable peer: skip this gossip
			}
			_ = schedule(i, r.ExpFloat64()*meanGossipMs)
		})
	}
	for i := 0; i < n; i++ {
		if err := schedule(i, r.ExpFloat64()*meanGossipMs); err != nil {
			return nil, err
		}
	}

	if _, err := sim.Run(0); err != nil {
		return nil, fmt.Errorf("coord: simnet embedding: %w", err)
	}

	emb := &Embedding{Coords: make([]Coordinate, n)}
	for i, node := range nodes {
		emb.Coords[i] = node.Coordinate()
	}
	return emb, nil
}

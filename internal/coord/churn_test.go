package coord

import (
	"math/rand"
	"testing"
)

func TestEmbedLateJoinValidation(t *testing.T) {
	m := testMatrix(t, 20, 50)
	cfg := DefaultEmbedConfig()
	cfg.LateJoinFrac = -0.1
	if _, err := Embed(rand.New(rand.NewSource(1)), m, cfg); err == nil {
		t.Error("negative fraction should fail")
	}
	cfg.LateJoinFrac = 1
	if _, err := Embed(rand.New(rand.NewSource(1)), m, cfg); err == nil {
		t.Error("fraction 1 should fail")
	}
}

func TestEmbedLateJoinersStillConverge(t *testing.T) {
	m := testMatrix(t, 70, 51)
	cfg := DefaultEmbedConfig()
	cfg.Rounds = 400
	cfg.LateJoinFrac = 0.3
	emb, err := Embed(rand.New(rand.NewSource(2)), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every node — including late joiners — must end with a valid,
	// non-origin coordinate.
	origin := 0
	for i, c := range emb.Coords {
		if !c.IsValid() {
			t.Fatalf("node %d coordinate invalid", i)
		}
		if c.Pos.IsZero() {
			origin++
		}
	}
	if origin > 0 {
		t.Errorf("%d nodes never moved from the origin", origin)
	}
	s, err := EvalError(emb, m)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy degrades a little under churn but must stay useful.
	if s.MedianRel > 0.5 {
		t.Errorf("median relative error %v too high under churn", s.MedianRel)
	}
}

func TestEmbedChurnVsStable(t *testing.T) {
	m := testMatrix(t, 60, 52)
	run := func(frac float64) ErrorSummary {
		cfg := DefaultEmbedConfig()
		cfg.Rounds = 300
		cfg.LateJoinFrac = frac
		emb, err := Embed(rand.New(rand.NewSource(3)), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := EvalError(emb, m)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	stable := run(0)
	churn := run(0.4)
	t.Logf("stable rel %.3f vs churn rel %.3f", stable.MedianRel, churn.MedianRel)
	// Churn cannot make things dramatically better; it may be slightly
	// better by chance, but a large win would indicate the stable path
	// is broken.
	if churn.MedianRel < stable.MedianRel*0.5 {
		t.Errorf("churn run (%v) implausibly beat stable run (%v)", churn.MedianRel, stable.MedianRel)
	}
}

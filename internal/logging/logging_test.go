package logging

import (
	"log/slog"
	"strings"
	"testing"
)

func TestParseEmptyDefaultsInfo(t *testing.T) {
	cfg, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default != slog.LevelInfo {
		t.Fatalf("default = %v", cfg.Default)
	}
	if cfg.Level("transport") != slog.LevelInfo {
		t.Fatal("unknown component should inherit default")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := Parse("warn, transport=debug ,daemon=error")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default != slog.LevelWarn {
		t.Fatalf("default = %v", cfg.Default)
	}
	if cfg.Level("transport") != slog.LevelDebug {
		t.Fatalf("transport = %v", cfg.Level("transport"))
	}
	if cfg.Level("daemon") != slog.LevelError {
		t.Fatalf("daemon = %v", cfg.Level("daemon"))
	}
	if cfg.Level("replica") != slog.LevelWarn {
		t.Fatalf("replica should fall back to default, got %v", cfg.Level("replica"))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"loud", "transport=verbose", "=debug"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestLoggerLevelAndComponentTag(t *testing.T) {
	cfg, _ := Parse("info,transport=debug")
	var daemonBuf, transportBuf strings.Builder

	daemon := cfg.Logger(&daemonBuf, "daemon")
	daemon.Debug("hidden")
	daemon.Info("visible", "epoch", 3)
	out := daemonBuf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked at info level: %s", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "component=daemon") || !strings.Contains(out, "epoch=3") {
		t.Fatalf("info line malformed: %s", out)
	}

	transport := cfg.Logger(&transportBuf, "transport")
	transport.Debug("wire", "method", "get")
	if !strings.Contains(transportBuf.String(), "wire") {
		t.Fatal("transport=debug override not applied")
	}
}

func TestNopDiscardsAndOr(t *testing.T) {
	n := Nop()
	n.Error("dropped", "k", "v") // must not panic, writes nowhere
	n.WithGroup("g").With("a", 1).Info("also dropped")

	if Or(nil) == nil {
		t.Fatal("Or(nil) returned nil")
	}
	real := slog.Default()
	if Or(real) != real {
		t.Fatal("Or should pass through non-nil logger")
	}
}

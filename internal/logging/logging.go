// Package logging configures log/slog for the georep binaries:
// structured key=value logs with per-component levels, so a daemon can
// run with quiet defaults while one noisy layer (say, transport) is
// turned up to debug. A level spec looks like
//
//	info,transport=debug,daemon=warn
//
// — an optional bare default level plus component=level overrides.
// Components used across the repo: "daemon", "transport", "replica".
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Config is a parsed level spec.
type Config struct {
	Default    slog.Level
	Components map[string]slog.Level
}

// Parse parses a level spec like "info,transport=debug". The empty spec
// defaults every component to info.
func Parse(spec string) (Config, error) {
	cfg := Config{Default: slog.LevelInfo, Components: map[string]slog.Level{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, levelStr, found := strings.Cut(part, "=")
		if !found {
			lvl, err := parseLevel(part)
			if err != nil {
				return Config{}, err
			}
			cfg.Default = lvl
			continue
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return Config{}, fmt.Errorf("logging: empty component in %q", part)
		}
		lvl, err := parseLevel(levelStr)
		if err != nil {
			return Config{}, err
		}
		cfg.Components[name] = lvl
	}
	return cfg, nil
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("logging: unknown level %q (want debug|info|warn|error)", s)
}

// Level returns the effective level for a component.
func (c Config) Level(component string) slog.Level {
	if lvl, ok := c.Components[component]; ok {
		return lvl
	}
	return c.Default
}

// Logger builds a component logger writing text slog lines to w at the
// component's effective level, tagged with component=<name>.
func (c Config) Logger(w io.Writer, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: c.Level(component)})
	return slog.New(h).With("component", component)
}

// Nop returns a logger that discards everything — the default wherever
// a *slog.Logger is optional, so call sites never nil-check.
func Nop() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler drops all records. (slog.DiscardHandler needs go 1.24;
// go.mod pins 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Or returns l if non-nil, else the nop logger.
func Or(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return Nop()
}

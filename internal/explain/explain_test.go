package explain

import (
	"bytes"
	"strings"
	"testing"

	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/provenance"
)

// testRecs builds a small mixed-version ledger history: epochs 1-2 are
// pre-v3 (no provenance), epoch 3 carries provenance for two objects.
func testRecs() []ledger.Record {
	prov := func(reason provenance.Reason, chosen float64, cfs ...provenance.Candidate) *provenance.Record {
		p := &provenance.Record{Reason: reason, GateBurn: 1.5, GateMissing: 1}
		for _, c := range cfs {
			p.AddCounterfactual(c.Source, c.CostMs, c.Replicas)
		}
		p.Finalize(chosen)
		return p
	}
	return []ledger.Record{
		{Epoch: 1, K: 2, Candidates: []int{1, 4, 9}, Replicas: []int{1, 4}, QuorumOK: true},
		{Epoch: 2, K: 2, Candidates: []int{1, 4, 9}, Replicas: []int{1, 4}, QuorumOK: true,
			ObjectID: "obj-a", Class: "hot"},
		{Epoch: 3, K: 2, Candidates: []int{1, 4, 9}, Replicas: []int{4, 9}, QuorumOK: true,
			Migrate: true, MovedReplicas: 1, ObjectID: "obj-a", Class: "hot",
			Prov: prov(provenance.ReasonMigrated, 20,
				provenance.Candidate{Source: provenance.SourcePrevious, CostMs: 25, Replicas: []int{1, 4}},
				provenance.Candidate{Source: provenance.SourceSwap, CostMs: 22, Replicas: []int{1, 9}})},
		{Epoch: 3, K: 2, Candidates: []int{1, 4, 9}, Replicas: []int{1, 4}, QuorumOK: true,
			ObjectID: "obj-b", Class: "cold",
			Prov: prov(provenance.ReasonSteady, 18,
				provenance.Candidate{Source: provenance.SourceSwap, CostMs: 17, Replicas: []int{1, 9}})},
	}
}

func TestBuildLatestWithProvenance(t *testing.T) {
	rep, err := Build(testRecs(), Options{Epoch: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 3 {
		t.Fatalf("resolved epoch %d, want 3 (latest with provenance)", rep.Epoch)
	}
	if rep.Records != 4 || rep.WithProvenance != 2 {
		t.Fatalf("records %d/%d, want 4 scanned with 2 provenance", rep.WithProvenance, rep.Records)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows %d, want both epoch-3 objects", len(rep.Rows))
	}
	if rep.Rows[0].ObjectID != "obj-a" || rep.Rows[1].ObjectID != "obj-b" {
		t.Fatalf("rows out of ledger order: %+v", rep.Rows)
	}
}

func TestBuildExplicitEpochAndObject(t *testing.T) {
	rep, err := Build(testRecs(), Options{Epoch: 3, ObjectID: "obj-b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].ObjectID != "obj-b" {
		t.Fatalf("object filter failed: %+v", rep.Rows)
	}
	if rep.Rows[0].Prov.Reason != provenance.ReasonSteady {
		t.Fatalf("wrong record selected: %+v", rep.Rows[0].Prov)
	}

	// A pre-v3 epoch still explains, with provenance marked unrecorded.
	rep, err = Build(testRecs(), Options{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Prov != nil {
		t.Fatalf("pre-v3 epoch row: %+v", rep.Rows)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{Epoch: -1}); err == nil {
		t.Fatal("empty ledger did not error")
	}
	if _, err := Build(testRecs(), Options{Epoch: 99}); err == nil {
		t.Fatal("missing epoch did not error")
	}
	if _, err := Build(testRecs(), Options{Epoch: -1, ObjectID: "obj-zzz"}); err == nil {
		t.Fatal("unknown object did not error")
	}
}

func TestRenderDeterministic(t *testing.T) {
	rep, err := Build(testRecs(), Options{Epoch: -1})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	Render(&a, rep)
	Render(&b, rep)
	if a.Len() == 0 || a.String() != b.String() {
		t.Fatal("render is not byte-deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"explain: epoch 3 (2/4 ledger records carry provenance)",
		"reason migrated",
		"chosen cost   : 20.000 ms",
		"gates         : burn 1.50x · missing 1",
		"counterfactuals (2 scored, cheapest first):",
		"regret        : best-alt 22.000 ms · regret 0.000 ms · ratio 1.0000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// Pre-v3 rows say so instead of inventing a reason.
	rep, err = Build(testRecs(), Options{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	Render(&c, rep)
	if !strings.Contains(c.String(), "reason unrecorded (pre-v3 record)") {
		t.Fatalf("pre-v3 render:\n%s", c.String())
	}
}

// Package explain turns recorded decision provenance into operator
// answers. The ledger (codec v3) carries, per epoch, the chosen
// placement's cost decomposition, the counterfactual placements the
// solver actually scored, and the structured outcome reason with its
// gating inputs; this package selects the epochs an operator asks
// about, shapes them into a Report, and renders the attribution table
// and counterfactual ranking `georepctl explain` and georepd's
// /explain endpoint show. Everything is deterministic: rows follow
// ledger order, floats render with fixed precision, and no wall clock
// is consulted.
package explain

import (
	"fmt"

	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/provenance"
)

// Options selects which decisions to explain.
type Options struct {
	// Epoch selects one epoch; negative means "the latest epoch that
	// recorded provenance" (falling back to the latest epoch at all).
	Epoch int
	// ObjectID, when non-empty, keeps only that object's records.
	ObjectID string
	// Limit caps the number of rows (0 = all selected).
	Limit int
}

// Row is one explained decision: the provenance record joined with the
// decision identity the ledger carries alongside it.
type Row struct {
	Epoch    int    `json:"epoch"`
	ObjectID string `json:"object_id,omitempty"`
	Class    string `json:"class,omitempty"`

	Replicas  []int `json:"replicas"`
	Migrated  bool  `json:"migrated"`
	Moved     int   `json:"moved"`
	Displaced int   `json:"displaced,omitempty"`

	// Prov is the recorded provenance; nil for pre-v3 records, which
	// still render their decision identity with reason "unrecorded".
	Prov *provenance.Record `json:"prov,omitempty"`
}

// Report is a set of explained decisions plus ledger-level context.
type Report struct {
	Rows []Row `json:"rows"`
	// Records counts ledger records scanned; WithProvenance how many of
	// those carried a v3 provenance tail.
	Records        int `json:"records"`
	WithProvenance int `json:"with_provenance"`
	// Epoch is the epoch the report explains (the resolved value of
	// Options.Epoch).
	Epoch int `json:"epoch"`
}

// Build selects and shapes the explained decisions from a ledger's
// records (oldest-first, as ledger.ReadDir returns them).
func Build(recs []ledger.Record, opts Options) (*Report, error) {
	rep := &Report{Records: len(recs), Epoch: opts.Epoch}
	for i := range recs {
		if recs[i].Prov != nil {
			rep.WithProvenance++
		}
	}

	// Resolve the target epoch: requested, or the latest with
	// provenance, or the latest at all.
	if opts.Epoch < 0 {
		best, bestProv := -1, -1
		for i := range recs {
			if opts.ObjectID != "" && recs[i].ObjectID != opts.ObjectID {
				continue
			}
			if recs[i].Epoch > best {
				best = recs[i].Epoch
			}
			if recs[i].Prov != nil && recs[i].Epoch > bestProv {
				bestProv = recs[i].Epoch
			}
		}
		if bestProv >= 0 {
			best = bestProv
		}
		if best < 0 {
			return nil, fmt.Errorf("explain: no matching ledger records")
		}
		rep.Epoch = best
	}

	for i := range recs {
		r := &recs[i]
		if r.Epoch != rep.Epoch {
			continue
		}
		if opts.ObjectID != "" && r.ObjectID != opts.ObjectID {
			continue
		}
		rep.Rows = append(rep.Rows, Row{
			Epoch:     r.Epoch,
			ObjectID:  r.ObjectID,
			Class:     r.Class,
			Replicas:  append([]int(nil), r.Replicas...),
			Migrated:  r.Migrate,
			Moved:     r.MovedReplicas,
			Displaced: r.Displaced,
			Prov:      r.Prov,
		})
		if opts.Limit > 0 && len(rep.Rows) >= opts.Limit {
			break
		}
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("explain: no records for epoch %d", rep.Epoch)
	}
	return rep, nil
}

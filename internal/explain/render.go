package explain

import (
	"fmt"
	"io"
)

// Render writes the operator-facing text view of a report: per decision,
// the outcome reason with its gating inputs, the cost attribution
// (read / write / migration, then per-DC shares), and the ranked
// counterfactual placements with their deltas. Output is deterministic
// byte-for-byte for a given report.
func Render(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "explain: epoch %d (%d/%d ledger records carry provenance)\n",
		rep.Epoch, rep.WithProvenance, rep.Records)
	for i := range rep.Rows {
		renderRow(w, &rep.Rows[i])
	}
}

func renderRow(w io.Writer, row *Row) {
	id := row.ObjectID
	if id == "" {
		id = "(single)"
	}
	p := row.Prov
	if p == nil {
		fmt.Fprintf(w, "\nepoch %-5d object %-14s reason unrecorded (pre-v3 record)\n", row.Epoch, id)
		fmt.Fprintf(w, "  placement     : %v  migrated=%v moved=%d displaced=%d\n",
			row.Replicas, row.Migrated, row.Moved, row.Displaced)
		return
	}
	held := ""
	if p.Held {
		held = "  [held]"
	}
	fmt.Fprintf(w, "\nepoch %-5d object %-14s reason %s%s\n", row.Epoch, id, p.Reason, held)
	fmt.Fprintf(w, "  placement     : %v  migrated=%v moved=%d displaced=%d\n",
		row.Replicas, row.Migrated, row.Moved, row.Displaced)
	fmt.Fprintf(w, "  chosen cost   : %.3f ms  (read %.3f + write %.3f + migration %.3f)\n",
		p.ChosenCostMs, p.ReadMs, p.WriteMs, p.MigrateMs)
	fmt.Fprintf(w, "  gates         : burn %.2fx · missing %d · drift %.4f · occupancy %.2f\n",
		p.GateBurn, p.GateMissing, p.GateDrift, p.GateOccupancy)
	if len(p.PerDC) > 0 {
		fmt.Fprintf(w, "  per-DC        : %-6s%9s%10s\n", "dc", "share", "mean-ms")
		for _, s := range p.PerDC {
			fmt.Fprintf(w, "                  %-6d%8.1f%%%10.3f\n", s.Node, s.Weight*100, s.MeanMs)
		}
	}
	if len(p.Counterfactuals) > 0 {
		fmt.Fprintf(w, "  counterfactuals (%d scored, cheapest first):\n", len(p.Counterfactuals))
		fmt.Fprintf(w, "    %-5s%-10s%-16s%10s%10s\n", "rank", "source", "placement", "cost-ms", "delta-ms")
		for i := range p.Counterfactuals {
			c := &p.Counterfactuals[i]
			fmt.Fprintf(w, "    %-5d%-10s%-16s%10.3f%+10.3f\n",
				i+1, c.Source, fmt.Sprintf("%v", c.Replicas), c.CostMs, c.DeltaMs)
		}
		fmt.Fprintf(w, "  regret        : best-alt %.3f ms · regret %.3f ms · ratio %.4f\n",
			p.BestAltMs, p.RegretMs, p.RegretRatio)
	} else {
		fmt.Fprintf(w, "  counterfactuals: none scored this epoch\n")
	}
}

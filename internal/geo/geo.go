// Package geo models node positions on the Earth's surface. The synthetic
// latency generator places simulated PlanetLab-style hosts inside real
// metro regions and derives propagation delay from great-circle distance,
// so the resulting RTT matrix has the clustered geometry (coasts,
// continents, ocean crossings) that geo-replication algorithms exploit.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// EarthRadiusKm is the mean radius of the Earth.
const EarthRadiusKm = 6371.0

// Point is a position on the sphere in degrees.
type Point struct {
	LatDeg float64
	LonDeg float64
}

// DistanceKm returns the great-circle distance between p and q using the
// haversine formula, which is numerically stable for nearby points.
func (p Point) DistanceKm(q Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := p.LatDeg * degToRad
	lat2 := q.LatDeg * degToRad
	dLat := (q.LatDeg - p.LatDeg) * degToRad
	dLon := (q.LonDeg - p.LonDeg) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(a))
}

// Region is a metro area that hosts simulated nodes.
type Region struct {
	Name   string
	Center Point
	// SpreadKm is the radius within which member nodes scatter.
	SpreadKm float64
	// Weight is the relative share of nodes placed in this region.
	Weight float64
}

// DefaultRegions lists metro areas roughly matching the geographic spread
// of the PlanetLab testbed (North America and Europe heavy, with Asia,
// Oceania and South America present). Weights approximate site counts.
func DefaultRegions() []Region {
	return []Region{
		{Name: "us-east", Center: Point{40.7, -74.0}, SpreadKm: 500, Weight: 5},
		{Name: "us-central", Center: Point{41.9, -87.6}, SpreadKm: 500, Weight: 3},
		{Name: "us-west", Center: Point{37.4, -122.1}, SpreadKm: 400, Weight: 4},
		{Name: "eu-west", Center: Point{51.5, -0.1}, SpreadKm: 400, Weight: 4},
		{Name: "eu-central", Center: Point{52.5, 13.4}, SpreadKm: 500, Weight: 3},
		{Name: "eu-south", Center: Point{45.5, 9.2}, SpreadKm: 400, Weight: 2},
		{Name: "asia-east", Center: Point{35.7, 139.7}, SpreadKm: 600, Weight: 3},
		{Name: "asia-south", Center: Point{1.35, 103.8}, SpreadKm: 400, Weight: 1},
		{Name: "oceania", Center: Point{-33.9, 151.2}, SpreadKm: 300, Weight: 1},
		{Name: "sa-east", Center: Point{-23.5, -46.6}, SpreadKm: 300, Weight: 1},
	}
}

// ValidateRegions checks that a region list can be sampled from.
func ValidateRegions(regions []Region) error {
	if len(regions) == 0 {
		return fmt.Errorf("geo: no regions")
	}
	var total float64
	for _, rg := range regions {
		if rg.Weight < 0 {
			return fmt.Errorf("geo: region %q has negative weight", rg.Name)
		}
		if rg.SpreadKm < 0 {
			return fmt.Errorf("geo: region %q has negative spread", rg.Name)
		}
		total += rg.Weight
	}
	if total <= 0 {
		return fmt.Errorf("geo: all region weights are zero")
	}
	return nil
}

// PickRegion samples a region index proportionally to region weights.
// Regions must have been validated.
func PickRegion(r *rand.Rand, regions []Region) int {
	var total float64
	for _, rg := range regions {
		total += rg.Weight
	}
	u := r.Float64() * total
	for i, rg := range regions {
		u -= rg.Weight
		if u < 0 {
			return i
		}
	}
	return len(regions) - 1
}

// ScatterIn returns a point near the region center: uniform direction,
// distance distributed so density decays away from the center, clamped to
// valid latitudes.
func ScatterIn(r *rand.Rand, rg Region) Point {
	// Triangular radial distribution: most nodes near the center.
	dist := rg.SpreadKm * math.Abs(r.NormFloat64()) / 2
	if dist > rg.SpreadKm {
		dist = rg.SpreadKm
	}
	bearing := r.Float64() * 2 * math.Pi

	// Small-offset approximation is fine at metro scales.
	dLat := dist / EarthRadiusKm * 180 / math.Pi * math.Cos(bearing)
	latRad := rg.Center.LatDeg * math.Pi / 180
	cosLat := math.Cos(latRad)
	if math.Abs(cosLat) < 0.05 {
		cosLat = 0.05 // avoid blow-up at the poles
	}
	dLon := dist / EarthRadiusKm * 180 / math.Pi * math.Sin(bearing) / cosLat

	p := Point{LatDeg: rg.Center.LatDeg + dLat, LonDeg: rg.Center.LonDeg + dLon}
	if p.LatDeg > 89 {
		p.LatDeg = 89
	}
	if p.LatDeg < -89 {
		p.LatDeg = -89
	}
	for p.LonDeg > 180 {
		p.LonDeg -= 360
	}
	for p.LonDeg < -180 {
		p.LonDeg += 360
	}
	return p
}

// Placement records where a simulated node was placed.
type Placement struct {
	Point  Point
	Region int // index into the region list
}

// PlaceNodes scatters n nodes across the given regions. The same seed
// always yields the same layout.
func PlaceNodes(r *rand.Rand, regions []Region, n int) ([]Placement, error) {
	if err := ValidateRegions(regions); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("geo: need n > 0 nodes, got %d", n)
	}
	out := make([]Placement, n)
	for i := range out {
		ri := PickRegion(r, regions)
		out[i] = Placement{Point: ScatterIn(r, regions[ri]), Region: ri}
	}
	return out, nil
}

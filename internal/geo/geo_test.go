package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // km
		tol  float64
	}{
		{"same point", Point{40, -74}, Point{40, -74}, 0, 0.001},
		{"nyc-london", Point{40.7128, -74.006}, Point{51.5074, -0.1278}, 5570, 60},
		{"sf-tokyo", Point{37.7749, -122.4194}, Point{35.6762, 139.6503}, 8280, 80},
		{"sydney-saopaulo", Point{-33.8688, 151.2093}, Point{-23.5505, -46.6333}, 13360, 150},
		{"equator quarter", Point{0, 0}, Point{0, 90}, math.Pi / 2 * EarthRadiusKm, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceKm(tt.b)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("distance = %.1f km, want %.1f ± %.1f", got, tt.want, tt.tol)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	a := Point{12.3, 45.6}
	b := Point{-7.8, 120.0}
	if d1, d2 := a.DistanceKm(b), b.DistanceKm(a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestDefaultRegionsValid(t *testing.T) {
	regions := DefaultRegions()
	if err := ValidateRegions(regions); err != nil {
		t.Fatal(err)
	}
	if len(regions) < 5 {
		t.Errorf("want a global spread of regions, got %d", len(regions))
	}
}

func TestValidateRegionsErrors(t *testing.T) {
	if err := ValidateRegions(nil); err == nil {
		t.Error("empty region list should fail")
	}
	if err := ValidateRegions([]Region{{Name: "x", Weight: -1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if err := ValidateRegions([]Region{{Name: "x", Weight: 1, SpreadKm: -5}}); err == nil {
		t.Error("negative spread should fail")
	}
	if err := ValidateRegions([]Region{{Name: "x", Weight: 0}}); err == nil {
		t.Error("all-zero weights should fail")
	}
}

func TestPickRegionRespectsWeights(t *testing.T) {
	regions := []Region{
		{Name: "a", Weight: 9},
		{Name: "b", Weight: 1},
	}
	r := rand.New(rand.NewSource(3))
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[PickRegion(r, regions)]++
	}
	frac := float64(counts[0]) / 10000
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("region a picked %.3f of the time, want ~0.9", frac)
	}
}

func TestScatterStaysNearCenter(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rg := Region{Name: "test", Center: Point{40, -74}, SpreadKm: 300, Weight: 1}
	for i := 0; i < 500; i++ {
		p := ScatterIn(r, rg)
		if d := p.DistanceKm(rg.Center); d > rg.SpreadKm*1.1 {
			t.Fatalf("scatter %v is %.0f km out, spread %v", p, d, rg.SpreadKm)
		}
	}
}

func TestScatterNearPole(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rg := Region{Name: "pole", Center: Point{89.5, 0}, SpreadKm: 200, Weight: 1}
	for i := 0; i < 200; i++ {
		p := ScatterIn(r, rg)
		if p.LatDeg > 89 || p.LatDeg < -89 {
			t.Fatalf("latitude out of clamp: %v", p)
		}
		if p.LonDeg > 180 || p.LonDeg < -180 {
			t.Fatalf("longitude not normalized: %v", p)
		}
	}
}

func TestPlaceNodesDeterministic(t *testing.T) {
	regions := DefaultRegions()
	a, err := PlaceNodes(rand.New(rand.NewSource(42)), regions, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceNodes(rand.New(rand.NewSource(42)), regions, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPlaceNodesErrors(t *testing.T) {
	if _, err := PlaceNodes(rand.New(rand.NewSource(1)), nil, 5); err == nil {
		t.Error("nil regions should fail")
	}
	if _, err := PlaceNodes(rand.New(rand.NewSource(1)), DefaultRegions(), 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPlaceNodesCoversRegions(t *testing.T) {
	regions := DefaultRegions()
	ps, err := PlaceNodes(rand.New(rand.NewSource(8)), regions, 500)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, p := range ps {
		seen[p.Region] = true
	}
	if len(seen) < len(regions)-1 {
		t.Errorf("only %d/%d regions populated with 500 nodes", len(seen), len(regions))
	}
}

// Property: haversine distance is a metric on sampled points — symmetric,
// non-negative, zero on identity, and obeys the triangle inequality.
func TestQuickDistanceMetric(t *testing.T) {
	randPoint := func(r *rand.Rand) Point {
		return Point{LatDeg: r.Float64()*170 - 85, LonDeg: r.Float64()*360 - 180}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randPoint(r), randPoint(r), randPoint(r)
		dab, dba := a.DistanceKm(b), b.DistanceKm(a)
		if math.Abs(dab-dba) > 1e-6 || dab < 0 {
			return false
		}
		if a.DistanceKm(a) > 1e-6 {
			return false
		}
		return a.DistanceKm(c) <= dab+b.DistanceKm(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distances never exceed half the Earth's circumference.
func TestQuickDistanceBounded(t *testing.T) {
	maxDist := math.Pi * EarthRadiusKm
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Point{r.Float64()*180 - 90, r.Float64()*360 - 180}
		b := Point{r.Float64()*180 - 90, r.Float64()*360 - 180}
		return a.DistanceKm(b) <= maxDist+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package stats provides the small set of descriptive statistics and
// deterministic random-sampling helpers the experiment harness needs:
// means, percentiles, CDFs, a streaming accumulator, and a bounded Zipf
// sampler for object-popularity workloads.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by reductions over an empty sample set.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// CDFPoint is one step of an empirical cumulative distribution.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF of xs as a sorted list of points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// FractionBelow returns the fraction of samples strictly at or below limit.
func FractionBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Accumulator collects a stream of samples with O(1) memory. Its zero
// value is ready to use.
type Accumulator struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sum2 += x * x
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// Sum returns the running total of the samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the mean of the recorded samples, or 0 when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Variance returns the population variance via E[X²]−E[X]² (the same
// identity the paper's micro-clusters rely on), clamped at zero to absorb
// floating-point cancellation.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sum2/float64(a.n) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation of the samples.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// MinMax returns the extreme samples seen so far.
func (a *Accumulator) MinMax() (min, max float64) { return a.min, a.max }

// Zipf draws integers in [0, n) with P(i) ∝ 1/(i+1)^s, the standard
// object-popularity skew. It precomputes the CDF so draws are O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s >= 0.
// s = 0 degenerates to the uniform distribution.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf needs n > 0, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("stats: zipf exponent must be >= 0, got %v", s)
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}, nil
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples one index using r.
func (z *Zipf) Draw(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// SampleWithoutReplacement returns k distinct integers from [0, n),
// chosen uniformly, in random order. It panics if k > n because callers
// always validate sizes first.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("stats: sample %d from %d", k, n))
	}
	perm := r.Perm(n)
	return perm[:k]
}

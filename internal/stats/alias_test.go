package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{5, 0, 1, 3, 1}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("item %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight item drawn %d times", counts[1])
	}
}

func TestAliasReweight(t *testing.T) {
	a, err := NewAlias([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Reweight([]float64{0, 0, 10, 0}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if got := a.Draw(r); got != 2 {
			t.Fatalf("draw %d after reweight to a point mass on 2", got)
		}
	}
}

func TestAliasReweightZeroAlloc(t *testing.T) {
	weights := make([]float64, 4096)
	for i := range weights {
		weights[i] = float64(i%7) + 0.5
	}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	allocs := testing.AllocsPerRun(100, func() {
		weights[r.Intn(len(weights))] += 1
		if err := a.Reweight(weights); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Reweight allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		a.Draw(r)
	})
	if allocs > 0 {
		t.Fatalf("Draw allocates %.1f/op, want 0", allocs)
	}
}

func TestAliasRejectsBadWeights(t *testing.T) {
	bad := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	}
	for _, ws := range bad {
		if _, err := NewAlias(ws); err == nil {
			t.Errorf("weights %v: want error", ws)
		}
	}
	a, err := NewAlias([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Reweight([]float64{1, 2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestAliasDrawInRange: any valid weight vector yields in-range draws.
func TestAliasDrawInRange(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	prop := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		ok := false
		for i, w := range raw {
			ws[i] = math.Abs(w)
			if math.IsNaN(ws[i]) || math.IsInf(ws[i], 0) {
				ws[i] = 0
			}
			if ws[i] > 0 {
				ok = true
			}
		}
		if !ok {
			return true
		}
		a, err := NewAlias(ws)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			d := a.Draw(r)
			if d < 0 || d >= len(ws) || ws[d] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

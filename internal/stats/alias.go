package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Alias draws integers in [0, n) proportionally to a weight vector in
// O(1) per draw using Walker's alias method. Unlike the CDF-based Zipf
// sampler, draws cost two uniform variates and two array reads
// regardless of n, and Reweight rebuilds the tables in place with zero
// allocations — which is what lets the streaming workload generator
// shift millions of client weights every epoch without touching the
// allocator.
type Alias struct {
	prob  []float64
	alias []int
	// scratch reused by Reweight so rebuilds are allocation-free.
	norm  []float64
	small []int
	large []int
}

// NewAlias builds a sampler over the given weights. Weights must be
// finite, non-negative, and not all zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: alias needs at least one weight")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
		norm:  make([]float64, n),
		small: make([]int, 0, n),
		large: make([]int, 0, n),
	}
	if err := a.Reweight(weights); err != nil {
		return nil, err
	}
	return a, nil
}

// N returns the number of items the sampler draws from.
func (a *Alias) N() int { return len(a.prob) }

// Reweight rebuilds the alias tables for a new weight vector of the same
// length. It allocates nothing, so per-epoch activity shifts are free of
// GC pressure. Weights must be finite, non-negative, and not all zero.
func (a *Alias) Reweight(weights []float64) error {
	n := len(weights)
	if n != len(a.prob) {
		return fmt.Errorf("stats: alias built for %d items, got %d weights", len(a.prob), n)
	}
	var total float64
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("stats: alias weight[%d] = %v must be finite and non-negative", i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("stats: alias weights sum to %v, need > 0", total)
	}

	// Walker's construction: scale weights to mean 1, then pair each
	// under-full cell with an over-full donor.
	scale := float64(n) / total
	a.small = a.small[:0]
	a.large = a.large[:0]
	for i, w := range weights {
		a.norm[i] = w * scale
		if a.norm[i] < 1 {
			a.small = append(a.small, i)
		} else {
			a.large = append(a.large, i)
		}
	}
	for len(a.small) > 0 && len(a.large) > 0 {
		s := a.small[len(a.small)-1]
		a.small = a.small[:len(a.small)-1]
		l := a.large[len(a.large)-1]
		a.prob[s] = a.norm[s]
		a.alias[s] = l
		a.norm[l] -= 1 - a.norm[s]
		if a.norm[l] < 1 {
			a.large = a.large[:len(a.large)-1]
			a.small = append(a.small, l)
		}
	}
	// Leftovers are exactly full up to rounding.
	for _, i := range a.large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range a.small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return nil
}

// Draw samples one index using r in O(1).
func (a *Alias) Draw(r *rand.Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty reductions should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if m, err := Min(xs); err != nil || m != -1 {
		t.Errorf("Min = %v,%v", m, err)
	}
	if m, err := Max(xs); err != nil || m != 7 {
		t.Errorf("Max = %v,%v", m, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 3},
		{100, 5},
		{25, 2},
		{90, 4.6},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile err = %v", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 should error")
	}
	if got, err := Percentile([]float64{42}, 75); err != nil || got != 42 {
		t.Errorf("single-sample percentile = %v,%v", got, err)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF len = %d", len(pts))
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Errorf("CDF not sorted: %+v", pts)
	}
	if pts[2].Fraction != 1 {
		t.Errorf("last fraction = %v, want 1", pts[2].Fraction)
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 2); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionBelow(nil, 2); got != 0 {
		t.Errorf("FractionBelow(nil) = %v", got)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var acc Accumulator
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*10 + 50
		acc.Add(x)
		xs = append(xs, x)
	}
	if acc.N() != 1000 {
		t.Fatalf("N = %d", acc.N())
	}
	if math.Abs(acc.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("acc mean %v vs batch %v", acc.Mean(), Mean(xs))
	}
	if math.Abs(acc.Variance()-Variance(xs)) > 1e-6 {
		t.Errorf("acc var %v vs batch %v", acc.Variance(), Variance(xs))
	}
	min, max := acc.MinMax()
	bmin, _ := Min(xs)
	bmax, _ := Max(xs)
	if min != bmin || max != bmax {
		t.Errorf("acc minmax (%v,%v) vs batch (%v,%v)", min, max, bmin, bmax)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.Variance() != 0 || acc.StdDev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative exponent should error")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	r := rand.New(rand.NewSource(11))
	counts := make([]int, 100)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Item 0 should receive a substantial share with s=1.2 over 100 items.
	if float64(counts[0])/draws < 0.1 {
		t.Errorf("head item share too small: %v", float64(counts[0])/draws)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[z.Draw(r)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d count %d not ~10000", i, c)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	got := SampleWithoutReplacement(r, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Errorf("out of range: %d", v)
		}
		if seen[v] {
			t.Errorf("duplicate: %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n should panic")
		}
	}()
	SampleWithoutReplacement(rand.New(rand.NewSource(1)), 2, 3)
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		return p0 == lo && p100 == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the streaming accumulator variance is never negative even on
// adversarial near-constant streams (catastrophic cancellation guard).
func TestQuickAccumulatorVarianceNonNegative(t *testing.T) {
	f := func(base float64, seed int64) bool {
		// Clamp to a physical range: squaring values near MaxFloat64
		// overflows to +Inf, which is outside this accumulator's domain
		// (it tracks latencies in milliseconds).
		base = math.Mod(base, 1e9)
		r := rand.New(rand.NewSource(seed))
		var acc Accumulator
		for i := 0; i < 100; i++ {
			acc.Add(base + r.Float64()*1e-9)
		}
		return acc.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF fractions are non-decreasing and end at exactly 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		pts := CDF(xs)
		prevV, prevF := math.Inf(-1), 0.0
		for _, p := range pts {
			if p.Value < prevV || p.Fraction < prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. Metric names are sanitized to the Prometheus charset
// (dots and dashes become underscores), output is sorted by name so
// successive scrapes diff cleanly.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return WritePrometheusPrefixed(w, s, "")
}

// WritePrometheusPrefixed is WritePrometheus with a namespace prefix
// prepended to every metric name ("georep_" on the daemon endpoint,
// so the families scrape consistently across a fleet). Names that
// already carry the prefix are not doubled — exporters that adopted
// the convention early keep their names.
func WritePrometheusPrefixed(w io.Writer, s Snapshot, prefix string) error {
	var b strings.Builder
	pref := func(name string) string {
		if prefix == "" || strings.HasPrefix(name, prefix) {
			return promName(name)
		}
		return promName(prefix + name)
	}
	for _, name := range SortedNames(s.Counters) {
		pn := pref(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, s.Counters[name])
	}
	for _, name := range SortedNames(s.Gauges) {
		pn := pref(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(s.Gauges[name]))
	}
	for _, name := range SortedNames(s.Histograms) {
		h := s.Histograms[name]
		pn := pref(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum int64
		sawInf := false
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := promFloat(bk.Upper)
			if math.IsInf(bk.Upper, 1) {
				le = "+Inf"
				sawInf = true
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		if !sawInf {
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry metric name ("daemon.get.latency_ms") onto
// the Prometheus name charset [a-zA-Z0-9_:], prefixing a leading digit
// with an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects: shortest exact
// decimal, with NaN and infinities spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

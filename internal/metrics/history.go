package metrics

import (
	"math"
	"sync"
	"time"
)

// History is an in-process time-series store over one Registry: a
// fixed-size ring of periodic snapshots, taken by calling Sample on a
// cadence the caller owns (the daemon uses a ticker; experiments use
// the simulated clock). Per-series storage is preallocated the first
// time a metric is seen, so steady-state sampling does not allocate —
// cheap enough to run every few seconds forever.
//
// Counters are stored as raw cumulative values and differenced at
// query time with Prometheus rate() semantics: a decrease between
// adjacent samples is read as a process restart, and the post-reset
// value counts as the whole increment. Histograms store cumulative
// per-bucket counts; windowed quantiles come from bucket deltas
// between the window's edge samples.
type History struct {
	mu  sync.Mutex
	reg *Registry

	times []int64 // sample times, unix ns; ring of cap len
	n     int     // valid samples (<= cap)
	head  int     // ring index the next Sample writes
	ord   int64   // samples ever taken; sample k's ordinal is ord-n+k

	counters map[string]*counterSeries
	gauges   map[string]*gaugeSeries
	hists    map[string]*histSeries

	// Flat (metric, series) pairs mirroring the maps above. Registries
	// only grow, so a size match means the cached view is current and
	// the per-tick snapshot loop walks these slices without touching a
	// map; a new metric triggers one rebuild.
	flatC []flatCounter
	flatG []flatGauge
	flatH []flatHist
}

type flatCounter struct {
	c *Counter
	s *counterSeries
}

type flatGauge struct {
	g *Gauge
	s *gaugeSeries
}

type flatHist struct {
	hg *Histogram
	s  *histSeries
}

// Each series tracks the ordinal of the last sample whose value
// differed from its predecessor (-1: never changed). A series whose
// last change predates a query window contributes nothing to it, so
// the windowed queries answer quiet series — idle error counters,
// parked gauges — without scanning the ring.
type counterSeries struct {
	vals    []int64
	changed int64
}

type gaugeSeries struct {
	vals    []float64
	changed int64
}

type histSeries struct {
	bounds  []float64
	counts  []int64 // cap × (len(bounds)+1), cumulative, flat
	count   []int64
	sum     []float64
	changed int64
}

// NewHistory builds a history of capacity samples over reg. Capacity
// below 2 is raised to 2 (deltas need two points).
func NewHistory(reg *Registry, capacity int) *History {
	if capacity < 2 {
		capacity = 2
	}
	return &History{
		reg:      reg,
		times:    make([]int64, capacity),
		counters: make(map[string]*counterSeries),
		gauges:   make(map[string]*gaugeSeries),
		hists:    make(map[string]*histSeries),
	}
}

// Registry returns the registry this history samples.
func (h *History) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Sample records one snapshot of every metric in the registry at
// nowNs. Series for metrics seen before are updated without
// allocating; a metric's first appearance allocates its ring and
// backfills past slots with the current value (counters/histograms —
// so pre-birth deltas are zero) or NaN (gauges — unknown).
func (h *History) Sample(nowNs int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := h.head
	h.times[i] = nowNs

	prevI := (i - 1 + len(h.times)) % len(h.times)
	h.reg.mu.RLock()
	h.syncFlatLocked()
	for _, f := range h.flatC {
		v := f.c.Value()
		if h.n > 0 && v != f.s.vals[prevI] {
			f.s.changed = h.ord
		}
		f.s.vals[i] = v
	}
	for _, f := range h.flatG {
		v := f.g.Value()
		if h.n > 0 && math.Float64bits(v) != math.Float64bits(f.s.vals[prevI]) {
			f.s.changed = h.ord
		}
		f.s.vals[i] = v
	}
	for _, f := range h.flatH {
		s, hg := f.s, f.hg
		nb := len(s.bounds) + 1
		row := s.counts[i*nb : (i+1)*nb]
		for b := 0; b < nb; b++ {
			row[b] = hg.counts[b].Load()
		}
		cnt := hg.count.Load()
		// Every observation bumps count, so count alone detects change.
		if h.n > 0 && cnt != s.count[prevI] {
			s.changed = h.ord
		}
		s.count[i] = cnt
		s.sum[i] = math.Float64frombits(hg.sumBits.Load())
	}
	h.reg.mu.RUnlock()

	h.ord++
	h.head = (h.head + 1) % len(h.times)
	if h.n < len(h.times) {
		h.n++
	}
}

// syncFlatLocked refreshes the flat snapshot view when the registry
// has grown since the last sample, creating (and backfilling) series
// for first-seen metrics. Caller holds h.mu and h.reg.mu (read).
func (h *History) syncFlatLocked() {
	if len(h.flatC) == len(h.reg.counters) &&
		len(h.flatG) == len(h.reg.gauges) &&
		len(h.flatH) == len(h.reg.hists) {
		return
	}
	h.flatC = h.flatC[:0]
	for name, c := range h.reg.counters {
		s := h.counters[name]
		if s == nil {
			s = &counterSeries{vals: make([]int64, len(h.times)), changed: -1}
			v := c.Value()
			for j := range s.vals {
				s.vals[j] = v
			}
			h.counters[name] = s
		}
		h.flatC = append(h.flatC, flatCounter{c, s})
	}
	h.flatG = h.flatG[:0]
	for name, g := range h.reg.gauges {
		s := h.gauges[name]
		if s == nil {
			s = &gaugeSeries{vals: make([]float64, len(h.times)), changed: -1}
			for j := range s.vals {
				s.vals[j] = math.NaN()
			}
			h.gauges[name] = s
		}
		h.flatG = append(h.flatG, flatGauge{g, s})
	}
	h.flatH = h.flatH[:0]
	for name, hg := range h.reg.hists {
		s := h.hists[name]
		nb := len(hg.counts)
		if s != nil && len(s.bounds)+1 != nb {
			s = nil // same name, different shape: start the series over
		}
		if s == nil {
			s = &histSeries{
				bounds:  hg.bounds,
				counts:  make([]int64, len(h.times)*nb),
				count:   make([]int64, len(h.times)),
				sum:     make([]float64, len(h.times)),
				changed: -1,
			}
			for b := 0; b < nb; b++ {
				v := hg.counts[b].Load()
				for j := 0; j < len(h.times); j++ {
					s.counts[j*nb+b] = v
				}
			}
			cnt := hg.count.Load()
			sum := math.Float64frombits(hg.sumBits.Load())
			for j := range s.count {
				s.count[j] = cnt
				s.sum[j] = sum
			}
			h.hists[name] = s
		}
		h.flatH = append(h.flatH, flatHist{hg, s})
	}
}

// Len returns how many samples are held (<= Cap).
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Cap returns the ring capacity.
func (h *History) Cap() int {
	if h == nil {
		return 0
	}
	return len(h.times)
}

// idx maps logical sample k (0 = oldest, n-1 = newest) to a ring
// index. Caller holds mu.
func (h *History) idx(k int) int {
	return (h.head - h.n + k + 2*len(h.times)) % len(h.times)
}

// window returns the logical range [lo, n) of samples with time >=
// sinceNs, extended one sample earlier when possible so deltas cover
// the full window. Caller holds mu.
func (h *History) window(sinceNs int64) (lo int) {
	lo = h.n
	for k := h.n - 1; k >= 0; k-- {
		if h.times[h.idx(k)] < sinceNs {
			break
		}
		lo = k
	}
	if lo > 0 {
		lo-- // baseline sample just before the window
	}
	return lo
}

// CounterDelta returns the total increase of the named counter across
// samples taken at or after sinceNs (using the sample just before as
// the baseline). A decrease between adjacent samples is treated as a
// counter reset: the later value counts in full. ok is false when the
// series is unknown or fewer than two samples cover the range.
func (h *History) CounterDelta(name string, sinceNs int64) (delta int64, ok bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.counters[name]
	if s == nil || h.n < 2 {
		return 0, false
	}
	lo := h.window(sinceNs)
	if lo >= h.n-1 {
		return 0, false
	}
	prev := s.vals[h.idx(lo)]
	for k := lo + 1; k < h.n; k++ {
		cur := s.vals[h.idx(k)]
		if cur >= prev {
			delta += cur - prev
		} else {
			delta += cur // reset: everything since restart counts
		}
		prev = cur
	}
	return delta, true
}

// GaugeOverFraction returns what fraction of samples at or after
// sinceNs had the named gauge strictly above bound. NaN samples
// (before the gauge existed) are excluded from the denominator. ok is
// false when no samples cover the range.
func (h *History) GaugeOverFraction(name string, sinceNs int64, bound float64) (frac float64, ok bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.gauges[name]
	if s == nil || h.n == 0 {
		return 0, false
	}
	var total, over int
	for k := 0; k < h.n; k++ {
		i := h.idx(k)
		if h.times[i] < sinceNs {
			continue
		}
		v := s.vals[i]
		if math.IsNaN(v) {
			continue
		}
		total++
		if v > bound {
			over++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(over) / float64(total), true
}

// windowsOf computes window() for every since time at once, filling
// los and returning the smallest lo. Sample times are ascending in
// logical order, so each window start is a binary search rather than a
// ring scan. Caller holds mu.
func (h *History) windowsOf(sinces []int64, los []int) (minLo int) {
	minLo = h.n
	for w, since := range sinces {
		// First logical sample with time >= since.
		lo, hi := 0, h.n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if h.times[h.idx(mid)] < since {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			lo-- // baseline sample just before the window
		}
		los[w] = lo
		if lo < minLo {
			minLo = lo
		}
	}
	return minLo
}

// CounterDeltas is the batched CounterDelta: one locked scan over the
// widest window yields the delta for every since time at once, with
// identical reset semantics (a pair's contribution does not depend on
// which windows contain it, and a window's delta is the sum of its
// pairs). The SLO engine asks for the same series over four burn
// windows plus the budget period every tick, so this is its hot-path
// shape: zero allocations for up to eight windows. Windows with too
// few samples report a zero delta (an empty window burns nothing).
func (h *History) CounterDeltas(name string, sinces []int64, out []int64) bool {
	if h == nil || len(sinces) == 0 || len(sinces) != len(out) {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.counters[name]
	if s == nil || h.n < 2 {
		return false
	}
	var losBuf [8]int
	los := losBuf[:0]
	if len(sinces) > len(losBuf) {
		los = make([]int, 0, len(sinces))
	}
	los = los[:len(sinces)]
	minLo := h.windowsOf(sinces, los)
	if s.changed <= h.ord-int64(h.n)+int64(minLo) {
		// Quiet since before the widest window: every delta is zero.
		for w := range out {
			out[w] = 0
		}
		return true
	}

	// start[w] snapshots the running delta at sample los[w]; the
	// window's delta is the final running total minus its snapshot.
	var startBuf [8]int64
	start := startBuf[:len(sinces)]
	if len(sinces) > len(startBuf) {
		start = make([]int64, len(sinces))
	}
	var cum int64
	ri := h.idx(minLo)
	prev := s.vals[ri]
	for k := minLo + 1; k < h.n; k++ {
		if ri++; ri == len(h.times) {
			ri = 0
		}
		cur := s.vals[ri]
		if cur >= prev {
			cum += cur - prev
		} else {
			cum += cur // reset: everything since restart counts
		}
		prev = cur
		for w, lo := range los {
			if lo == k {
				start[w] = cum
			}
		}
	}
	for w, lo := range los {
		if lo >= h.n-1 {
			out[w] = 0
		} else {
			out[w] = cum - start[w]
		}
	}
	return true
}

// HistDeltas is the batched HistDelta: one locked scan fills a window
// view per since time. Bucket slices in out are reused when their
// capacity allows, so a caller holding its scratch across ticks
// evaluates every window without allocating.
func (h *History) HistDeltas(name string, sinces []int64, out []HistWindow) bool {
	if h == nil || len(sinces) == 0 || len(sinces) != len(out) {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.hists[name]
	if s == nil || h.n < 2 {
		return false
	}
	nb := len(s.bounds) + 1
	for w := range out {
		if cap(out[w].Buckets) < nb {
			out[w].Buckets = make([]int64, nb)
		} else {
			out[w].Buckets = out[w].Buckets[:nb]
			clear(out[w].Buckets)
		}
		out[w].Bounds = s.bounds
		out[w].Count, out[w].Sum = 0, 0
	}
	var losBuf [8]int
	los := losBuf[:0]
	if len(sinces) > len(losBuf) {
		los = make([]int, 0, len(sinces))
	}
	los = los[:len(sinces)]
	minLo := h.windowsOf(sinces, los)
	if s.changed <= h.ord-int64(h.n)+int64(minLo) {
		return true // quiet since before the widest window: zero views
	}

	// Running per-bucket delta; out[w].Buckets doubles as the snapshot
	// at sample los[w] until the final subtraction below.
	var cumBuf [24]int64
	cum := cumBuf[:0]
	if nb > len(cumBuf) {
		cum = make([]int64, 0, nb)
	}
	cum = cum[:nb]
	var cumCount int64
	var cumSum float64
	pi := h.idx(minLo)
	ci := pi
	for k := minLo + 1; k < h.n; k++ {
		if ci++; ci == len(h.times) {
			ci = 0
		}
		reset := s.count[ci] < s.count[pi]
		for b := 0; b < nb; b++ {
			cur, prev := s.counts[ci*nb+b], s.counts[pi*nb+b]
			if reset || cur < prev {
				cum[b] += cur
			} else {
				cum[b] += cur - prev
			}
		}
		if reset {
			cumCount += s.count[ci]
			cumSum += s.sum[ci]
		} else {
			cumCount += s.count[ci] - s.count[pi]
			cumSum += s.sum[ci] - s.sum[pi]
		}
		pi = ci
		for w, lo := range los {
			if lo == k {
				copy(out[w].Buckets, cum)
				out[w].Count, out[w].Sum = cumCount, cumSum
			}
		}
	}
	for w, lo := range los {
		if lo >= h.n-1 {
			clear(out[w].Buckets)
			out[w].Count, out[w].Sum = 0, 0
			continue
		}
		for b := 0; b < nb; b++ {
			out[w].Buckets[b] = cum[b] - out[w].Buckets[b]
		}
		out[w].Count = cumCount - out[w].Count
		out[w].Sum = cumSum - out[w].Sum
	}
	return true
}

// GaugeOverFractions is the batched GaugeOverFraction: one locked scan
// counts over/total per since time. Windows with no samples report 0.
func (h *History) GaugeOverFractions(name string, sinces []int64, bound float64, out []float64) bool {
	if h == nil || len(sinces) == 0 || len(sinces) != len(out) {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.gauges[name]
	if s == nil || h.n == 0 {
		return false
	}
	if s.changed <= h.ord-int64(h.n) {
		// Constant across the whole retained ring: every non-empty
		// window sees only the current value.
		v := s.vals[h.idx(h.n-1)]
		newest := h.times[h.idx(h.n-1)]
		for w, since := range sinces {
			if !math.IsNaN(v) && newest >= since && v > bound {
				out[w] = 1
			} else {
				out[w] = 0
			}
		}
		return true
	}
	var totBuf, overBuf [8]int
	tot, over := totBuf[:len(sinces)], overBuf[:len(sinces)]
	if len(sinces) > len(totBuf) {
		tot, over = make([]int, len(sinces)), make([]int, len(sinces))
	}
	ri := h.idx(0)
	for k := 0; k < h.n; k++ {
		if k > 0 {
			if ri++; ri == len(h.times) {
				ri = 0
			}
		}
		v := s.vals[ri]
		if math.IsNaN(v) {
			continue
		}
		t := h.times[ri]
		for w, since := range sinces {
			if t >= since {
				tot[w]++
				if v > bound {
					over[w]++
				}
			}
		}
	}
	for w := range out {
		if tot[w] == 0 {
			out[w] = 0
		} else {
			out[w] = float64(over[w]) / float64(tot[w])
		}
	}
	return true
}

// HistWindow is the delta view of one histogram over a query window:
// per-bucket increments plus total count and sum.
type HistWindow struct {
	Bounds  []float64 // shared with the live histogram; do not mutate
	Buckets []int64   // len(Bounds)+1, overflow last
	Count   int64
	Sum     float64
}

// Quantile estimates the q-quantile of the windowed observations by
// linear interpolation within buckets (lower edge 0 for the first
// bucket; the overflow bucket reports its lower bound).
func (w HistWindow) Quantile(q float64) float64 {
	return BucketQuantile(w.Bounds, w.Buckets, q)
}

// OverBound estimates how many windowed observations exceeded bound,
// interpolating within the bucket that straddles it.
func (w HistWindow) OverBound(bound float64) float64 {
	var over float64
	for i, c := range w.Buckets {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = w.Bounds[i-1]
		}
		hi := math.Inf(1)
		if i < len(w.Bounds) {
			hi = w.Bounds[i]
		}
		switch {
		case lo >= bound:
			over += float64(c)
		case hi <= bound:
			// entirely below
		case math.IsInf(hi, 1):
			over += float64(c) // overflow straddles: count it all
		default:
			over += float64(c) * (hi - bound) / (hi - lo)
		}
	}
	return over
}

// HistDelta returns the named histogram's increments across samples at
// or after sinceNs (reset-aware, like CounterDelta). ok is false when
// the series is unknown or fewer than two samples cover the range.
// The returned Buckets slice is freshly allocated.
func (h *History) HistDelta(name string, sinceNs int64) (w HistWindow, ok bool) {
	if h == nil {
		return HistWindow{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.hists[name]
	if s == nil || h.n < 2 {
		return HistWindow{}, false
	}
	lo := h.window(sinceNs)
	if lo >= h.n-1 {
		return HistWindow{}, false
	}
	nb := len(s.bounds) + 1
	w = HistWindow{Bounds: s.bounds, Buckets: make([]int64, nb)}
	pi := h.idx(lo)
	for k := lo + 1; k < h.n; k++ {
		ci := h.idx(k)
		reset := s.count[ci] < s.count[pi]
		for b := 0; b < nb; b++ {
			cur, prev := s.counts[ci*nb+b], s.counts[pi*nb+b]
			if reset || cur < prev {
				w.Buckets[b] += cur
			} else {
				w.Buckets[b] += cur - prev
			}
		}
		if reset {
			w.Count += s.count[ci]
			w.Sum += s.sum[ci]
		} else {
			w.Count += s.count[ci] - s.count[pi]
			w.Sum += s.sum[ci] - s.sum[pi]
		}
		pi = ci
	}
	return w, true
}

// BucketQuantile estimates the q-quantile from bucket increment counts
// (len(bounds)+1 buckets, overflow last). The first bucket's lower
// edge is 0 — right for latencies, lags, and sizes, which is all this
// repo measures. The overflow bucket clamps to its lower bound.
func BucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i == len(bounds) {
			return lo // overflow: no upper edge to interpolate toward
		}
		hi := bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	// Unreached: cum == total >= rank by the end of the loop.
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// Dump is the JSON shape of a history range, for /metrics/history:
// oldest-first sample times plus raw per-sample series. Counters and
// histogram count/sum are cumulative (consumers difference them);
// P99 is the sample-over-sample windowed tail, ready for sparklines.
type Dump struct {
	Times    []int64                `json:"times_ns"`
	Counters map[string][]int64     `json:"counters,omitempty"`
	Gauges   map[string][]float64   `json:"gauges,omitempty"`
	Hists    map[string]HistoryHist `json:"histograms,omitempty"`
}

// HistoryHist is one histogram's per-sample history.
type HistoryHist struct {
	Count []int64   `json:"count"`
	Sum   []float64 `json:"sum"`
	P99   []float64 `json:"p99"`
}

// Dump copies the samples taken at or after sinceNs (all samples when
// sinceNs <= 0). Gauge NaNs are emitted as 0 to stay JSON-safe. Not a
// hot path; it allocates freely.
func (h *History) Dump(sinceNs int64) Dump {
	d := Dump{
		Counters: map[string][]int64{},
		Gauges:   map[string][]float64{},
		Hists:    map[string]HistoryHist{},
	}
	if h == nil {
		return d
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var ks []int
	for k := 0; k < h.n; k++ {
		if h.times[h.idx(k)] >= sinceNs {
			ks = append(ks, k)
		}
	}
	d.Times = make([]int64, len(ks))
	for j, k := range ks {
		d.Times[j] = h.times[h.idx(k)]
	}
	for _, name := range SortedNames(h.counters) {
		s := h.counters[name]
		vals := make([]int64, len(ks))
		for j, k := range ks {
			vals[j] = s.vals[h.idx(k)]
		}
		d.Counters[name] = vals
	}
	for _, name := range SortedNames(h.gauges) {
		s := h.gauges[name]
		vals := make([]float64, len(ks))
		for j, k := range ks {
			v := s.vals[h.idx(k)]
			if math.IsNaN(v) {
				v = 0
			}
			vals[j] = v
		}
		d.Gauges[name] = vals
	}
	for _, name := range SortedNames(h.hists) {
		s := h.hists[name]
		nb := len(s.bounds) + 1
		hh := HistoryHist{
			Count: make([]int64, len(ks)),
			Sum:   make([]float64, len(ks)),
			P99:   make([]float64, len(ks)),
		}
		deltas := make([]int64, nb)
		for j, k := range ks {
			i := h.idx(k)
			hh.Count[j] = s.count[i]
			hh.Sum[j] = s.sum[i]
			if k == 0 {
				continue // no earlier sample to difference against
			}
			pi := h.idx(k - 1)
			reset := s.count[i] < s.count[pi]
			for b := 0; b < nb; b++ {
				cur, prev := s.counts[i*nb+b], s.counts[pi*nb+b]
				if reset || cur < prev {
					deltas[b] = cur
				} else {
					deltas[b] = cur - prev
				}
			}
			hh.P99[j] = BucketQuantile(s.bounds, deltas, 0.99)
		}
		d.Hists[name] = hh
	}
	return d
}

// SinceNs converts a lookback duration ending at nowNs into the
// sinceNs argument the query methods take.
func SinceNs(nowNs int64, lookback time.Duration) int64 {
	return nowNs - lookback.Nanoseconds()
}

// Package metrics is a dependency-free, concurrency-safe metrics layer
// for the replica-placement runtime: atomic counters and gauges,
// fixed-bucket histograms with quantile snapshots, and a bounded epoch
// trace ring. Every runtime layer (replica manager, daemon, transport,
// experiments) feeds a Registry; snapshots serialize to JSON for the
// georepd metrics endpoint and the georepctl metrics subcommand.
//
// All metric operations on hot paths are single atomic instructions, so
// instrumentation stays cheap enough for the Route/Record path (see
// BenchmarkMetricsOverhead at the repo root). Nil receivers are no-ops:
// code may hold a nil *Registry and instrument unconditionally.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move in both directions. The zero
// value is ready to use; a nil Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram over float64 observations.
// Bucket i counts observations v <= bounds[i]; one implicit overflow
// bucket counts the rest. All updates are atomic; a nil Histogram
// ignores all operations.
type Histogram struct {
	bounds    []float64 // sorted upper bounds, len >= 1
	counts    []atomic.Int64
	count     atomic.Int64
	sumBits   atomic.Uint64 // float64 sum, CAS-updated
	minBits   atomic.Uint64 // float64, CAS-updated
	maxBits   atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // last traced observation per bucket
}

// Exemplar links one concrete observation to the trace that produced
// it, Prometheus/OpenMetrics style: a histogram bucket remembers the
// most recent traced value it absorbed, so a tail-latency bucket (or a
// paging SLO reading it) points straight at a span tree in the flight
// recorder.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// LatencyBuckets are the default bucket upper bounds for millisecond
// latencies, spanning sub-millisecond local calls to multi-second WAN
// stalls.
func LatencyBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
}

// SizeBuckets are the default bucket upper bounds for byte sizes
// (powers of four from 64 B to 64 MiB).
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864}
}

// NewHistogram builds a histogram with the given sorted upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("metrics: NaN bucket bound at %d", i)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: bucket bounds not strictly increasing at %d: %v", i, bounds)
		}
	}
	h := &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1), // +1 overflow
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's exemplar. Only traced requests should
// pass a traceID: the exemplar store costs one small allocation, which
// is fine at trace-sampling rates but not per-access.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	h.AttachExemplar(v, traceID)
}

// AttachExemplar links traceID to the bucket that v falls in without
// recording a new observation. Retrofit hook for call sites whose
// counting happens elsewhere (e.g. the replication log observes lag
// itself; the experiment attaches the epoch's trace ID afterwards).
func (h *Histogram) AttachExemplar(v float64, traceID string) {
	if h == nil || traceID == "" || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
}

// TailExemplars returns the exemplars attached to buckets whose range
// lies at or above bound — the traced observations that explain the
// histogram's tail. Order is bucket order (ascending).
func (h *Histogram) TailExemplars(bound float64) []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	from := sort.SearchFloat64s(h.bounds, bound)
	for i := from; i < len(h.exemplars); i++ {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// BucketCount is one bucket of a histogram snapshot. UpperMs is +Inf for
// the overflow bucket. Exemplar is the bucket's most recent traced
// observation, when any call site attached one.
type BucketCount struct {
	Upper    float64   `json:"upper"`
	Count    int64     `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSnapshot is a consistent-enough point-in-time view of a
// histogram (individual fields are read atomically; a snapshot taken
// during heavy concurrent writes may be off by in-flight observations).
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot captures the histogram's current state, including estimated
// p50/p95/p99 (linear interpolation within buckets, clamped to the
// observed min/max).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	if s.Count == 0 {
		return HistogramSnapshot{Buckets: s.Buckets[:0]}
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{Upper: upper, Count: c, Exemplar: h.exemplars[i].Load()}
		total += c
	}
	s.P50 = quantile(s, total, 0.50)
	s.P95 = quantile(s, total, 0.95)
	s.P99 = quantile(s, total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts. Within a bucket
// the distribution is assumed uniform; results are clamped to [Min,Max].
func quantile(s HistogramSnapshot, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range s.Buckets {
		if b.Count == 0 {
			cum += b.Count
			continue
		}
		prev := cum
		cum += b.Count
		if float64(cum) < rank {
			continue
		}
		lo := s.Min
		if i > 0 {
			lo = math.Max(s.Min, s.Buckets[i-1].Upper)
		}
		hi := b.Upper
		if math.IsInf(hi, 1) {
			hi = s.Max
		}
		hi = math.Min(hi, s.Max)
		if hi < lo {
			return lo
		}
		frac := (rank - float64(prev)) / float64(b.Count)
		return lo + frac*(hi-lo)
	}
	return s.Max
}

// Registry is a named collection of metrics. Metric accessors are
// get-or-create and safe for concurrent use; holding the returned metric
// and updating it directly is the intended hot-path pattern. A nil
// Registry hands out nil metrics, which ignore all operations.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the existing histogram and
// ignore bounds). Invalid bounds on first use return nil, which is safe
// to observe into.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		var err error
		h, err = NewHistogram(bounds)
		if err != nil {
			return nil
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON, expvar-style:
// one flat object keyed by metric name. Infinities in histogram bounds
// are encoded as the string "+Inf".
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := MarshalSnapshot(r.Snapshot())
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// jsonBucket mirrors BucketCount with an Inf-safe upper bound.
type jsonBucket struct {
	Upper    any       `json:"upper"`
	Count    int64     `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonSnapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]jsonHistogram `json:"histograms"`
}

// MarshalSnapshot encodes a snapshot as indented JSON with +Inf bucket
// bounds stringified (encoding/json rejects raw infinities).
func MarshalSnapshot(s Snapshot) ([]byte, error) {
	out := jsonSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]jsonHistogram, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		jh := jsonHistogram{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}
		for _, b := range h.Buckets {
			jb := jsonBucket{Count: b.Count, Exemplar: b.Exemplar}
			if math.IsInf(b.Upper, 1) {
				jb.Upper = "+Inf"
			} else {
				jb.Upper = b.Upper
			}
			jh.Buckets = append(jh.Buckets, jb)
		}
		out.Histograms[name] = jh
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSnapshot decodes JSON produced by MarshalSnapshot.
func UnmarshalSnapshot(b []byte) (Snapshot, error) {
	var in jsonSnapshot
	if err := json.Unmarshal(b, &in); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: decode snapshot: %w", err)
	}
	s := Snapshot{
		Counters:   in.Counters,
		Gauges:     in.Gauges,
		Histograms: make(map[string]HistogramSnapshot, len(in.Histograms)),
	}
	for name, jh := range in.Histograms {
		h := HistogramSnapshot{
			Count: jh.Count, Sum: jh.Sum, Min: jh.Min, Max: jh.Max,
			P50: jh.P50, P95: jh.P95, P99: jh.P99,
		}
		for _, jb := range jh.Buckets {
			b := BucketCount{Count: jb.Count, Exemplar: jb.Exemplar}
			switch u := jb.Upper.(type) {
			case float64:
				b.Upper = u
			case string:
				b.Upper = math.Inf(1)
			}
			h.Buckets = append(h.Buckets, b)
		}
		s.Histograms[name] = h
	}
	return s, nil
}

// SortedNames returns the metric names of a kind in sorted order, for
// deterministic rendering.
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramEmptyQuantiles(t *testing.T) {
	h, err := NewHistogram([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v; want 0", s.Mean())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	h, err := NewHistogram([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d; want 10", s.Count)
	}
	// All mass in one bucket with identical values: quantiles clamp to
	// the observed min/max.
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q != 50 {
			t.Fatalf("single-bucket quantile = %v; want 50 (snapshot %+v)", q, s)
		}
	}
}

func TestHistogramAllOverflow(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1000)
	h.Observe(3000)
	s := h.Snapshot()
	if s.Count != 2 || s.Buckets[2].Count != 2 {
		t.Fatalf("overflow not counted: %+v", s)
	}
	// Quantiles interpolate inside [max(bounds), Max], clamped.
	if s.P99 < 1000 || s.P99 > 3000 {
		t.Fatalf("overflow p99 = %v; want within [1000,3000]", s.P99)
	}
	if s.P50 < 1000 || s.P50 > 3000 {
		t.Fatalf("overflow p50 = %v; want within [1000,3000]", s.P50)
	}
}

func TestHistogramNaNBoundRejected(t *testing.T) {
	if _, err := NewHistogram([]float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("NaN bound accepted")
	} else if !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := NewHistogram([]float64{math.NaN()}); err == nil {
		t.Fatal("lone NaN bound accepted")
	}
	// Registry.Histogram swallows the error into a safe nil.
	reg := NewRegistry()
	if h := reg.Histogram("bad", []float64{math.NaN()}); h != nil {
		t.Fatal("registry handed out a NaN-bounded histogram")
	}
}

func TestHistogramNaNObservationIgnored(t *testing.T) {
	h, _ := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("NaN observation counted: %+v", s)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h, err := NewHistogram([]float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	h.ObserveExemplar(5, "trace-fast")
	h.ObserveExemplar(500, "trace-slow")
	h.Observe(600) // untraced: must not clobber the exemplar

	tail := h.TailExemplars(100)
	if len(tail) != 1 || tail[0].TraceID != "trace-slow" || tail[0].Value != 500 {
		t.Fatalf("tail exemplars = %+v; want one trace-slow@500", tail)
	}
	all := h.TailExemplars(0)
	if len(all) != 2 {
		t.Fatalf("all exemplars = %+v; want 2", all)
	}

	// AttachExemplar links without counting.
	before := h.Snapshot().Count
	h.AttachExemplar(50, "trace-mid")
	if got := h.Snapshot().Count; got != before {
		t.Fatalf("AttachExemplar changed count %d -> %d", before, got)
	}
	// Snapshot carries exemplars through JSON.
	s := h.Snapshot()
	var found bool
	for _, b := range s.Buckets {
		if b.Exemplar != nil && b.Exemplar.TraceID == "trace-mid" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot lost the attached exemplar: %+v", s.Buckets)
	}
	reg := NewRegistry()
	reg.mu.Lock()
	reg.hists["h"] = h
	reg.mu.Unlock()
	b, err := MarshalSnapshot(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "trace-slow") {
		t.Fatal("marshaled snapshot dropped exemplars")
	}
	back, err := UnmarshalSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	var roundTripped bool
	for _, bk := range back.Histograms["h"].Buckets {
		if bk.Exemplar != nil && bk.Exemplar.TraceID == "trace-slow" {
			roundTripped = true
		}
	}
	if !roundTripped {
		t.Fatal("exemplar lost in snapshot round trip")
	}
	// Nil histogram stays a no-op.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	nilH.AttachExemplar(1, "x")
	if nilH.TailExemplars(0) != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}

func TestWritePrometheusPrefixed(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("replog_appends_total").Add(3)
	reg.Counter("georep_already").Add(1)
	reg.Gauge("slo_x_state").Set(2)
	reg.Histogram("daemon_rpc_get_ms", []float64{1, 10}).Observe(5)
	var b strings.Builder
	if err := WritePrometheusPrefixed(&b, reg.Snapshot(), "georep_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"georep_replog_appends_total 3",
		"georep_slo_x_state 2",
		"georep_daemon_rpc_get_ms_count 1",
		"# TYPE georep_already counter", // not doubled
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prefixed output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "georep_georep_") {
		t.Fatalf("prefix doubled:\n%s", out)
	}
}

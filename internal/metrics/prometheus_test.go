package metrics

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("daemon.get.calls").Add(7)
	r.Counter("transport.retries").Add(2)
	r.Gauge("replica.k").Set(3)
	h := r.Histogram("daemon.get.latency_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE daemon_get_calls counter\n",
		"daemon_get_calls 7\n",
		"# TYPE transport_retries counter\n",
		"# TYPE replica_k gauge\n",
		"replica_k 3\n",
		"# TYPE daemon_get_latency_ms histogram\n",
		`daemon_get_latency_ms_bucket{le="1"} 1` + "\n",
		`daemon_get_latency_ms_bucket{le="10"} 3` + "\n",
		`daemon_get_latency_ms_bucket{le="100"} 4` + "\n",
		`daemon_get_latency_ms_bucket{le="+Inf"} 5` + "\n",
		"daemon_get_latency_ms_sum 560.5\n",
		"daemon_get_latency_ms_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}

// TestPrometheusTextValid lint-checks the exposition line by line: every
// sample line must parse as name{optional le label} value, every # line
// must be a TYPE comment, bucket counts must be cumulative, and the
// le="+Inf" bucket must equal _count.
func TestPrometheusTextValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.total").Inc()
	r.Gauge("g.now").Set(-1.5)
	h := r.Histogram("lat.ms", LatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 37.7)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}

	var lastBucketVal int64 = -1
	var infVal, countVal int64 = -1, -1
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("non-TYPE comment: %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			t.Fatalf("bad sample value %q in %q", val, line)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
			if !strings.HasSuffix(name, "}") || !strings.Contains(name, `le="`) {
				t.Fatalf("bad labels: %q", line)
			}
		}
		for i, r := range base {
			valid := r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9' && i > 0)
			if !valid {
				t.Fatalf("invalid metric name char %q in %q", r, base)
			}
		}
		if strings.HasPrefix(name, "lat_ms_bucket") {
			n, _ := strconv.ParseInt(val, 10, 64)
			if n < lastBucketVal {
				t.Fatalf("buckets not cumulative: %q after %d", line, lastBucketVal)
			}
			lastBucketVal = n
			if strings.Contains(name, `le="+Inf"`) {
				infVal = n
			}
		}
		if name == "lat_ms_count" {
			countVal, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if infVal != 100 || countVal != 100 {
		t.Fatalf("+Inf bucket %d and _count %d must both equal 100", infVal, countVal)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"daemon.get.calls": "daemon_get_calls",
		"a-b c":            "a_b_c",
		"9lives":           "_9lives",
		"ok_name:x":        "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromFloat(t *testing.T) {
	if promFloat(math.Inf(1)) != "+Inf" || promFloat(math.Inf(-1)) != "-Inf" || promFloat(math.NaN()) != "NaN" {
		t.Fatal("special floats")
	}
	if promFloat(2.5) != "2.5" {
		t.Fatalf("promFloat(2.5) = %q", promFloat(2.5))
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty snapshot produced output: %q", b.String())
	}
}

func TestWritePrometheusEmptyHistogramConsistent(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty.ms", []float64{1, 2})
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// An unobserved histogram has no explicit buckets in the snapshot,
	// but the exposition must still close with a consistent +Inf bucket.
	if !strings.Contains(out, `empty_ms_bucket{le="+Inf"} 0`+"\n") {
		t.Fatalf("no +Inf bucket for empty histogram:\n%s", out)
	}
	if !strings.Contains(out, "empty_ms_count 0\n") {
		t.Fatalf("missing count:\n%s", out)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(fmt.Sprintf("c%d.total", i)).Add(int64(i))
		h := r.Histogram(fmt.Sprintf("h%d.ms", i), LatencyBuckets())
		h.Observe(float64(i))
	}
	s := r.Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		_ = WritePrometheus(&sb, s)
	}
}

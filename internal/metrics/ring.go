package metrics

import "sync"

// EpochTrace records what one epoch of the replica-placement loop
// concluded — the per-decision costs the paper's economic argument is
// about (summary bytes shipped, replicas moved, estimated gain) plus the
// ground-truth delay actually observed during the epoch.
type EpochTrace struct {
	// Epoch is the 1-based epoch number.
	Epoch int `json:"epoch"`
	// Migrated reports whether the placement changed.
	Migrated bool `json:"migrated"`
	// K is the replication degree after the epoch.
	K int `json:"k"`
	// Replicas is the placement after the epoch.
	Replicas []int `json:"replicas"`
	// EstimatedOldMs and EstimatedNewMs are the summary-estimated mean
	// delays of the previous and adopted/rejected placements.
	EstimatedOldMs float64 `json:"estimated_old_ms"`
	EstimatedNewMs float64 `json:"estimated_new_ms"`
	// ActualMeanMs is the ground-truth mean access delay observed over
	// the epoch's recorded accesses (0 if the caller cannot measure it).
	ActualMeanMs float64 `json:"actual_mean_ms"`
	// Accesses counts the accesses recorded during the epoch.
	Accesses int64 `json:"accesses"`
	// MovedReplicas counts locations that required a data copy.
	MovedReplicas int `json:"moved_replicas"`
	// SummaryBytes is the wire size of the collected summaries.
	SummaryBytes int `json:"summary_bytes"`
	// Degraded reports that at least one replica's summary could not be
	// collected and the epoch ran on a partial or stale view.
	Degraded bool `json:"degraded,omitempty"`
	// MissingSummaries lists the replicas that were unreachable.
	MissingSummaries []int `json:"missing_summaries,omitempty"`
}

// TraceRing is a bounded ring of the most recent epoch traces. It is
// safe for concurrent use; a nil TraceRing ignores all operations.
type TraceRing struct {
	mu    sync.Mutex
	buf   []EpochTrace
	next  int
	total int
}

// NewTraceRing returns a ring keeping the last n epochs (n <= 0 defaults
// to 64).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 64
	}
	return &TraceRing{buf: make([]EpochTrace, 0, n)}
}

// Add appends one epoch trace, evicting the oldest when full.
func (t *TraceRing) Add(e EpochTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
}

// Len returns how many traces the ring currently holds.
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns how many traces were ever added, including evicted ones.
func (t *TraceRing) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained traces oldest-first.
func (t *TraceRing) Snapshot() []EpochTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EpochTrace, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

package metrics

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestEpochTraceJSONRoundTripStable(t *testing.T) {
	in := EpochTrace{
		Epoch:            12,
		Migrated:         true,
		K:                3,
		Replicas:         []int{0, 4, 9},
		EstimatedOldMs:   81.25,
		EstimatedNewMs:   64.5,
		ActualMeanMs:     70.125,
		Accesses:         100_000,
		MovedReplicas:    2,
		SummaryBytes:     4096,
		Degraded:         true,
		MissingSummaries: []int{4},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out EpochTrace
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip drift:\n in=%+v\nout=%+v", in, out)
	}
	// A second marshal must be byte-identical — the georepctl metrics
	// output and EXPERIMENTS snippets depend on stable field order.
	b2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("marshal not stable:\n%s\n%s", b, b2)
	}
}

func TestEpochTraceOmitsHealthyFields(t *testing.T) {
	b, err := json.Marshal(EpochTrace{Epoch: 1, K: 2, Replicas: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, absent := range []string{"degraded", "missing_summaries"} {
		if contains := json.Valid(b) && jsonHasKey(s, absent); contains {
			t.Fatalf("healthy trace serialized %q: %s", absent, s)
		}
	}
}

func jsonHasKey(s, key string) bool {
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

func TestTraceRingSnapshotJSONRoundTrip(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		ring.Add(EpochTrace{Epoch: i, K: 3, Replicas: []int{i}})
	}
	snap := ring.Snapshot()
	if len(snap) != 4 || snap[0].Epoch != 3 || snap[3].Epoch != 6 {
		t.Fatalf("ring window: %+v", snap)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var out []EpochTrace
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, out) {
		t.Fatalf("ring snapshot round trip drift:\n in=%+v\nout=%+v", snap, out)
	}
	if ring.Total() != 6 || ring.Len() != 4 {
		t.Fatalf("total=%d len=%d", ring.Total(), ring.Len())
	}
}

func TestTraceRingConcurrentAdd(t *testing.T) {
	ring := NewTraceRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ring.Add(EpochTrace{Epoch: w*100 + i})
			}
		}(w)
	}
	wg.Wait()
	if ring.Total() != 800 {
		t.Fatalf("total = %d", ring.Total())
	}
	if ring.Len() != 32 {
		t.Fatalf("len = %d", ring.Len())
	}
	// snapshot during quiescence must be internally consistent
	if got := len(ring.Snapshot()); got != 32 {
		t.Fatalf("snapshot len %d", got)
	}
}

package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", LatencyBuckets()).Observe(1)
	var ring *TraceRing
	ring.Add(EpochTrace{})
	if ring.Len() != 0 || ring.Total() != 0 || ring.Snapshot() != nil {
		t.Fatal("nil ring is not a no-op")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("no error for empty bounds")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("no error for non-increasing bounds")
	}
	r := NewRegistry()
	h := r.Histogram("bad", nil)
	if h != nil {
		t.Fatal("registry returned a histogram for invalid bounds")
	}
	h.Observe(1) // must not panic
}

// TestHistogramQuantilesDeterministic drives a histogram with a known
// synthetic load and checks p50/p95/p99 against the exact empirical
// quantiles, within one bucket width of interpolation error.
func TestHistogramQuantilesDeterministic(t *testing.T) {
	// Bounds every 50 ms; load is 1..1000 ms, one observation each, so
	// the exact quantile q is ~1000q and interpolation stays within the
	// 50 ms bucket width.
	var bounds []float64
	for b := 50.0; b <= 1000; b += 50 {
		bounds = append(bounds, b)
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %v/%v, want 1/1000", s.Min, s.Max)
	}
	if want := 500500.0; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	for _, tc := range []struct {
		name  string
		got   float64
		exact float64
	}{
		{"p50", s.P50, 500},
		{"p95", s.P95, 950},
		{"p99", s.P99, 990},
	} {
		if math.Abs(tc.got-tc.exact) > 50 {
			t.Errorf("%s = %v, want %v ± 50 (one bucket width)", tc.name, tc.got, tc.exact)
		}
	}
	if s.Mean() != 500.5 {
		t.Errorf("mean = %v, want 500.5", s.Mean())
	}
}

func TestHistogramQuantilesSingleValue(t *testing.T) {
	h, err := NewHistogram([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	s := h.Snapshot()
	// All mass in one bucket whose range is clamped to [15,15]: every
	// quantile must be exactly the value.
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q != 15 {
			t.Fatalf("quantile = %v, want 15 (snapshot %+v)", q, s)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h, err := NewHistogram([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5)
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	if s.Buckets[0].Count != 1 || s.Buckets[1].Count != 2 {
		t.Fatalf("bucket counts = %+v", s.Buckets)
	}
	if !math.IsInf(s.Buckets[1].Upper, 1) {
		t.Fatalf("overflow bound = %v, want +Inf", s.Buckets[1].Upper)
	}
	// Overflow quantiles are clamped to the observed max.
	if s.P99 > 200 {
		t.Fatalf("p99 = %v, want <= 200", s.P99)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h, err := NewHistogram(LatencyBuckets())
	if err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Gauge("k").Set(3)
	h := r.Histogram("latency_ms", []float64{10, 100})
	h.Observe(5)
	h.Observe(500) // overflow bucket: exercises the +Inf encoding

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"requests_total": 7`, `"latency_ms"`, `"+Inf"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}

	s, err := UnmarshalSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["requests_total"] != 7 {
		t.Errorf("round-trip counter = %d, want 7", s.Counters["requests_total"])
	}
	hs := s.Histograms["latency_ms"]
	if hs.Count != 2 {
		t.Errorf("round-trip histogram count = %d, want 2", hs.Count)
	}
	if len(hs.Buckets) != 3 || !math.IsInf(hs.Buckets[2].Upper, 1) {
		t.Errorf("round-trip buckets = %+v", hs.Buckets)
	}
}

func TestTraceRingWraps(t *testing.T) {
	ring := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		ring.Add(EpochTrace{Epoch: i})
	}
	if ring.Len() != 3 || ring.Total() != 5 {
		t.Fatalf("len/total = %d/%d, want 3/5", ring.Len(), ring.Total())
	}
	got := ring.Snapshot()
	want := []int{3, 4, 5}
	for i, e := range got {
		if e.Epoch != want[i] {
			t.Fatalf("snapshot epochs = %v, want %v", got, want)
		}
	}
}

func TestTraceRingDefaultCapacity(t *testing.T) {
	ring := NewTraceRing(0)
	for i := 0; i < 100; i++ {
		ring.Add(EpochTrace{Epoch: i})
	}
	if ring.Len() != 64 {
		t.Fatalf("default-capacity ring holds %d, want 64", ring.Len())
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this proves the layer is data-race free, and the final
// counts prove no updates were lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	ring := NewTraceRing(8)
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("ops").Inc()
				r.Gauge("last").Set(float64(i))
				r.Histogram("lat", LatencyBuckets()).Observe(float64(i % 100))
				if i%100 == 0 {
					ring.Add(EpochTrace{Epoch: i})
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != goroutines*perG {
		t.Fatalf("ops = %d, want %d", got, goroutines*perG)
	}
	s := r.Histogram("lat", nil).Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
	if ring.Total() != goroutines*perG/100 {
		t.Fatalf("ring total = %d, want %d", ring.Total(), goroutines*perG/100)
	}
}

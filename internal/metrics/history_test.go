package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

func ns(sec int) int64 { return int64(sec) * 1e9 }

func TestHistoryCounterDelta(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 8)
	c := reg.Counter("reqs")
	for s := 0; s < 5; s++ {
		c.Add(10)
		h.Sample(ns(s))
	}
	// Whole range: baseline is the first sample (value 10), so the
	// visible increase is 40.
	if d, ok := h.CounterDelta("reqs", 0); !ok || d != 40 {
		t.Fatalf("full delta = %d, %v; want 40, true", d, ok)
	}
	// Window covering the last two samples plus one baseline: 20.
	if d, ok := h.CounterDelta("reqs", ns(3)); !ok || d != 20 {
		t.Fatalf("windowed delta = %d, %v; want 20, true", d, ok)
	}
	if _, ok := h.CounterDelta("missing", 0); ok {
		t.Fatal("unknown series reported ok")
	}
}

// TestHistoryCounterReset models a daemon restart: the cumulative
// counter drops and the post-restart value must count in full, not as
// a negative increment.
func TestHistoryCounterReset(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 8)
	c := reg.Counter("reqs")
	c.Add(100)
	h.Sample(ns(0))
	c.Add(50)
	h.Sample(ns(1)) // 150

	// "Restart": swap in a fresh counter under the same name. The
	// registry API never replaces a metric in place, so the flat
	// snapshot view only refreshes when the registry grows — which a
	// restarted process does immediately, re-registering everything it
	// measures (modeled here by one new counter).
	reg.mu.Lock()
	reg.counters["reqs"] = &Counter{}
	reg.mu.Unlock()
	reg.Counter("reborn").Inc()
	reg.Counter("reqs").Add(30)
	h.Sample(ns(2)) // 30 < 150: reset

	d, ok := h.CounterDelta("reqs", 0)
	if !ok {
		t.Fatal("no delta after reset")
	}
	// 100->150 (+50) then reset to 30 (+30).
	if d != 80 {
		t.Fatalf("reset-aware delta = %d; want 80", d)
	}
}

func TestHistoryRingWraparound(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 4)
	c := reg.Counter("reqs")
	g := reg.Gauge("lag")
	for s := 0; s < 10; s++ {
		c.Add(1)
		g.Set(float64(s))
		h.Sample(ns(s))
	}
	if h.Len() != 4 || h.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d; want 4/4", h.Len(), h.Cap())
	}
	// Only samples 6..9 remain: deltas visible = 3.
	if d, ok := h.CounterDelta("reqs", 0); !ok || d != 3 {
		t.Fatalf("wrapped delta = %d, %v; want 3, true", d, ok)
	}
	d := h.Dump(0)
	if len(d.Times) != 4 || d.Times[0] != ns(6) || d.Times[3] != ns(9) {
		t.Fatalf("dump times = %v; want 6..9s", d.Times)
	}
	if got := d.Gauges["lag"]; len(got) != 4 || got[0] != 6 || got[3] != 9 {
		t.Fatalf("dump gauge = %v; want [6 7 8 9]", got)
	}
}

func TestHistoryHistDeltaQuantile(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 8)
	hist := reg.Histogram("delay_ms", []float64{10, 20, 40, 80})
	hist.Observe(5)
	h.Sample(ns(0))
	// Window 1: all fast.
	for i := 0; i < 100; i++ {
		hist.Observe(5)
	}
	h.Sample(ns(1))
	// Window 2: all slow.
	for i := 0; i < 100; i++ {
		hist.Observe(70)
	}
	h.Sample(ns(2))

	// Whole range: 200 obs, half over 40.
	w, ok := h.HistDelta("delay_ms", 0)
	if !ok || w.Count != 200 {
		t.Fatalf("count = %d, %v; want 200, true", w.Count, ok)
	}
	if over := w.OverBound(40); math.Abs(over-100) > 1e-9 {
		t.Fatalf("over 40 = %v; want 100", over)
	}
	// Last window only: p50 sits in the (40,80] bucket.
	w, ok = h.HistDelta("delay_ms", ns(2))
	if !ok || w.Count != 100 {
		t.Fatalf("windowed count = %d, %v; want 100, true", w.Count, ok)
	}
	if q := w.Quantile(0.5); q <= 40 || q > 80 {
		t.Fatalf("windowed p50 = %v; want in (40,80]", q)
	}
}

func TestHistoryGaugeOverFraction(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 8)
	g := reg.Gauge("lag")
	for s := 0; s < 4; s++ {
		g.Set(float64(s * 100)) // 0, 100, 200, 300
		h.Sample(ns(s))
	}
	f, ok := h.GaugeOverFraction("lag", 0, 150)
	if !ok || math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("over fraction = %v, %v; want 0.5, true", f, ok)
	}
}

// TestHistorySampleSteadyStateAllocs pins the tentpole promise: once
// every series exists, Sample allocates nothing.
func TestHistorySampleSteadyStateAllocs(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Inc()
	reg.Gauge("b").Set(1)
	reg.Histogram("c", LatencyBuckets()).Observe(1)
	h := NewHistory(reg, 64)
	h.Sample(ns(0)) // allocate all series
	var s int
	allocs := testing.AllocsPerRun(100, func() {
		s++
		h.Sample(ns(s))
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocates %v/op; want 0", allocs)
	}
}

func TestHistoryLateBornSeries(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 8)
	h.Sample(ns(0))
	h.Sample(ns(1))
	c := reg.Counter("late")
	c.Add(500)
	h.Sample(ns(2)) // first sight: backfilled at 500
	c.Add(7)
	h.Sample(ns(3))
	// Pre-birth slots carry the birth value, so only the +7 shows.
	if d, ok := h.CounterDelta("late", 0); !ok || d != 7 {
		t.Fatalf("late-born delta = %d, %v; want 7, true", d, ok)
	}
}

func TestHistoryDumpJSONAndP99(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 8)
	hist := reg.Histogram("delay_ms", []float64{10, 20, 40, 80})
	h.Sample(ns(0))
	for i := 0; i < 50; i++ {
		hist.Observe(30)
	}
	h.Sample(ns(1))
	d := h.Dump(0)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("dump marshal: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty dump")
	}
	hh := d.Hists["delay_ms"]
	if len(hh.P99) != 2 || hh.P99[1] <= 20 || hh.P99[1] > 40 {
		t.Fatalf("dump p99 = %v; want last in (20,40]", hh.P99)
	}
}

// TestHistoryBatchedQueriesMatchSingle pins the batched multi-window
// queries (the SLO engine's hot path) to the single-window originals
// over a randomized ring that wraps, resets, and includes windows that
// are empty, partial, and whole-ring.
func TestHistoryBatchedQueriesMatchSingle(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, 16)
	c := reg.Counter("reqs")
	g := reg.Gauge("lag")
	hist := reg.Histogram("delay_ms", []float64{10, 40})
	rng := func(s int) int64 { return int64(s*s%7 + 1) } // deterministic "random"
	for s := 0; s < 25; s++ {
		c.Add(rng(s))
		g.Set(float64(s % 5 * 100))
		hist.Observe(float64(s % 9 * 10))
		if s == 12 { // mid-run reset of the counter series
			reg.mu.Lock()
			reg.counters["reqs"] = &Counter{}
			reg.mu.Unlock()
			reg.Counter("reset_marker").Inc()
		}
		h.Sample(ns(s))
	}
	sinces := []int64{0, ns(10), ns(15), ns(22), ns(24), ns(40)}

	cd := make([]int64, len(sinces))
	if !h.CounterDeltas("reqs", sinces, cd) {
		t.Fatal("CounterDeltas not ok")
	}
	for i, since := range sinces {
		want, ok := h.CounterDelta("reqs", since)
		if !ok {
			want = 0 // batched reports empty windows as zero delta
		}
		if cd[i] != want {
			t.Errorf("CounterDeltas[%d] (since %d) = %d; want %d", i, since, cd[i], want)
		}
	}

	hw := make([]HistWindow, len(sinces))
	if !h.HistDeltas("delay_ms", sinces, hw) {
		t.Fatal("HistDeltas not ok")
	}
	for i, since := range sinces {
		want, ok := h.HistDelta("delay_ms", since)
		if !ok {
			want = HistWindow{}
		}
		if hw[i].Count != want.Count || math.Abs(hw[i].Sum-want.Sum) > 1e-9 {
			t.Errorf("HistDeltas[%d] count/sum = %d/%v; want %d/%v",
				i, hw[i].Count, hw[i].Sum, want.Count, want.Sum)
		}
		for b := range want.Buckets {
			if hw[i].Buckets[b] != want.Buckets[b] {
				t.Errorf("HistDeltas[%d] bucket %d = %d; want %d",
					i, b, hw[i].Buckets[b], want.Buckets[b])
			}
		}
	}

	gf := make([]float64, len(sinces))
	if !h.GaugeOverFractions("lag", sinces, 150, gf) {
		t.Fatal("GaugeOverFractions not ok")
	}
	for i, since := range sinces {
		want, ok := h.GaugeOverFraction("lag", since, 150)
		if !ok {
			want = 0
		}
		if math.Abs(gf[i]-want) > 1e-9 {
			t.Errorf("GaugeOverFractions[%d] = %v; want %v", i, gf[i], want)
		}
	}

	// Unknown series and mismatched lengths refuse.
	if h.CounterDeltas("missing", sinces, cd) {
		t.Error("CounterDeltas ok for unknown series")
	}
	if h.CounterDeltas("reqs", sinces, cd[:1]) {
		t.Error("CounterDeltas ok with mismatched out length")
	}
}

func TestBucketQuantileEdges(t *testing.T) {
	bounds := []float64{10, 20}
	if q := BucketQuantile(bounds, []int64{0, 0, 0}, 0.99); q != 0 {
		t.Fatalf("empty quantile = %v; want 0", q)
	}
	// All overflow: clamps to the last bound.
	if q := BucketQuantile(bounds, []int64{0, 0, 5}, 0.5); q != 20 {
		t.Fatalf("overflow quantile = %v; want 20", q)
	}
	// Out-of-range q clamps.
	if q := BucketQuantile(bounds, []int64{4, 0, 0}, 1.5); q != 10 {
		t.Fatalf("clamped quantile = %v; want 10", q)
	}
}

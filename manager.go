package georep

import (
	"fmt"
	"math/rand"

	"github.com/georep/georep/internal/replica"
)

// ManagerConfig parameterizes a live replica manager.
type ManagerConfig struct {
	// K is the initial replication degree.
	K int
	// MicroClusters is the per-replica summary budget m (default 10).
	MicroClusters int
	// Candidates are the data-center node indices replicas may live at.
	Candidates []int
	// InitialReplicas optionally fixes the starting placement; nil uses
	// the first K candidates.
	InitialReplicas []int
	// MinRelativeGain is the fractional estimated-delay improvement
	// required before migrating (default 0, i.e. migrate on any gain).
	MinRelativeGain float64
	// MigrationCostPerByte, LatencyValuePerMsAccess and ObjectBytes
	// enable the economic migration test when all are positive: a
	// migration happens only if the latency value it recovers exceeds
	// the transfer cost.
	MigrationCostPerByte    float64
	LatencyValuePerMsAccess float64
	ObjectBytes             float64
	// MinReplicas/MaxReplicas with demand thresholds enable dynamic k:
	// the degree grows past GrowAbove total epoch weight and shrinks
	// below ShrinkBelow. Zero values pin k.
	MinReplicas, MaxReplicas int
	GrowAbove, ShrinkBelow   float64
	// DecayFactor ages summaries between epochs (default 0.5).
	DecayFactor float64
	// WindowEpochs, when positive, replaces decay with exact CluStream
	// time windows: each epoch's decision sees exactly the accesses of
	// the last WindowEpochs epochs. DecayFactor is then ignored.
	WindowEpochs int
}

// EpochReport describes what one epoch's coordination cycle concluded.
type EpochReport struct {
	// Migrated reports whether the placement changed.
	Migrated bool
	// Replicas is the placement after the epoch.
	Replicas []int
	// K is the replication degree after demand adaptation.
	K int
	// EstimatedOldMs / EstimatedNewMs are the summary-estimated mean
	// delays of the previous and proposed placements.
	EstimatedOldMs float64
	EstimatedNewMs float64
	// MovedReplicas counts locations that required a data copy.
	MovedReplicas int
	// SummaryBytes is the wire size of the collected micro-cluster
	// summaries — the online approach's entire bandwidth cost.
	SummaryBytes int
}

// Manager is the live replica-placement loop for one object (or object
// group) over a deployment: it routes accesses to the predicted-closest
// replica, maintains the per-replica summaries, and migrates replicas at
// epoch boundaries per the paper's Algorithm 1.
type Manager struct {
	d     *Deployment
	inner *replica.Manager
	dims  int
}

// NewManager creates a manager on the deployment.
func (d *Deployment) NewManager(cfg ManagerConfig) (*Manager, error) {
	m := cfg.MicroClusters
	if m <= 0 {
		m = 10
	}
	dims := 0
	if d.matrix.N() > 0 {
		dims = d.coords[0].Pos.Dim()
	}
	for _, c := range cfg.Candidates {
		if c < 0 || c >= d.matrix.N() {
			return nil, fmt.Errorf("georep: candidate %d out of range", c)
		}
	}
	rcfg := replica.Config{
		K:    cfg.K,
		M:    m,
		Dims: dims,
		Migration: replica.MigrationPolicy{
			MinRelativeGain: cfg.MinRelativeGain,
			CostPerByte:     cfg.MigrationCostPerByte,
			GainPerMsAccess: cfg.LatencyValuePerMsAccess,
			ObjectBytes:     cfg.ObjectBytes,
		},
		KPolicy: replica.KPolicy{
			Min:         cfg.MinReplicas,
			Max:         cfg.MaxReplicas,
			GrowAbove:   cfg.GrowAbove,
			ShrinkBelow: cfg.ShrinkBelow,
		},
		DecayFactor:  cfg.DecayFactor,
		WindowEpochs: cfg.WindowEpochs,
	}
	inner, err := replica.NewManager(rcfg, cfg.Candidates, d.coords, cfg.InitialReplicas)
	if err != nil {
		return nil, fmt.Errorf("georep: new manager: %w", err)
	}
	return &Manager{d: d, inner: inner, dims: dims}, nil
}

// Replicas returns the current replica locations.
func (m *Manager) Replicas() []int { return m.inner.Replicas() }

// K returns the current replication degree.
func (m *Manager) K() int { return m.inner.K() }

// Migrations returns how many epochs adopted a placement change.
func (m *Manager) Migrations() int { return m.inner.Migrations() }

// RecordAccess routes one read from the client node to its predicted-
// closest replica, folds it into that replica's summary, and returns the
// serving replica together with the ground-truth RTT the client
// experienced. weight is the data volume transferred (use 1 for uniform
// requests).
func (m *Manager) RecordAccess(clientNode int, weight float64) (servedBy int, rttMs float64, err error) {
	if clientNode < 0 || clientNode >= m.d.matrix.N() {
		return 0, 0, fmt.Errorf("georep: client node %d out of range", clientNode)
	}
	rep, err := m.inner.Record(m.d.coords[clientNode], weight)
	if err != nil {
		return rep, 0, err
	}
	return rep, m.d.matrix.RTT(clientNode, rep), nil
}

// EndEpoch runs the coordinator cycle: collect summaries, adapt k,
// propose, migrate if approved, decay. The seed drives the weighted
// k-means initialization.
func (m *Manager) EndEpoch(seed int64) (EpochReport, error) {
	dec, err := m.inner.EndEpoch(rand.New(rand.NewSource(seed)))
	if err != nil {
		return EpochReport{}, fmt.Errorf("georep: end epoch: %w", err)
	}
	return EpochReport{
		Migrated:       dec.Migrate,
		Replicas:       dec.NewReplicas,
		K:              dec.K,
		EstimatedOldMs: dec.EstimatedOldMs,
		EstimatedNewMs: dec.EstimatedNewMs,
		MovedReplicas:  dec.MovedReplicas,
		SummaryBytes:   dec.CollectedBytes,
	}, nil
}

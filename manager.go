package georep

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/replog"
	"github.com/georep/georep/internal/trace"
)

// ManagerConfig parameterizes a live replica manager.
type ManagerConfig struct {
	// K is the initial replication degree.
	K int
	// MicroClusters is the per-replica summary budget m (default 10).
	MicroClusters int
	// Candidates are the data-center node indices replicas may live at.
	Candidates []int
	// InitialReplicas optionally fixes the starting placement; nil uses
	// the first K candidates.
	InitialReplicas []int
	// MinRelativeGain is the fractional estimated-delay improvement
	// required before migrating (default 0, i.e. migrate on any gain).
	MinRelativeGain float64
	// MigrationCostPerByte, LatencyValuePerMsAccess and ObjectBytes
	// enable the economic migration test when all are positive: a
	// migration happens only if the latency value it recovers exceeds
	// the transfer cost.
	MigrationCostPerByte    float64
	LatencyValuePerMsAccess float64
	ObjectBytes             float64
	// MinReplicas/MaxReplicas with demand thresholds enable dynamic k:
	// the degree grows past GrowAbove total epoch weight and shrinks
	// below ShrinkBelow. Zero values pin k.
	MinReplicas, MaxReplicas int
	GrowAbove, ShrinkBelow   float64
	// DecayFactor ages summaries between epochs (default 0.5).
	DecayFactor float64
	// WindowEpochs, when positive, replaces decay with exact CluStream
	// time windows: each epoch's decision sees exactly the accesses of
	// the last WindowEpochs epochs. DecayFactor is then ignored.
	WindowEpochs int
	// IngestShards, when > 1 (power of two), partitions each replica's
	// summarizer into client-hash shards so concurrent batch ingest does
	// not serialize on one lock. Mutually exclusive with WindowEpochs.
	IngestShards int
	// Quorum is the fraction of replicas whose fresh summaries must be
	// collected before an epoch may adapt k or migrate (default 0.5).
	// Below quorum the epoch completes degraded: estimates are computed
	// from stale summaries but no placement change is committed.
	Quorum float64
	// Tracing enables the per-epoch span recorder: every EndEpoch
	// produces a span tree (collect per replica, k-means, decision) in a
	// bounded flight recorder, with degraded / below-quorum / migrating
	// epochs pinned as anomalous. Retrieve trees via TraceRecorder.
	Tracing bool
	// Ledger, when non-nil, durably records every epoch's decision
	// inputs and outcome (including the observed mean access delay) for
	// offline audit — see internal/ledger and internal/audit. The caller
	// owns the ledger's lifecycle (Open/Close).
	Ledger *ledger.Ledger
	// WriteFraction, when positive, enables the write path: epoch
	// decisions name a write leader, and the migration gate blends the
	// read estimate with the leader's write + fan-out cost at this
	// weight. Zero keeps decisions byte-identical to a read-only config.
	WriteFraction float64
	// LeaderPolicy places the leader when WriteFraction > 0: "centroid"
	// (demand-weighted, default) or "fanout" (lowest replication cost).
	// Ignored when WriteFraction is zero.
	LeaderPolicy string
	// Provenance enables per-epoch decision provenance: each epoch's
	// ledger record (and metrics, when available) carries the chosen
	// placement's cost decomposition, the counterfactual candidates the
	// solver actually scored, the gating inputs, and a structured reason.
	// Off by default; with it off, ledger bytes are identical to prior
	// versions.
	Provenance bool
	// BurnRate, when non-nil with Provenance on, supplies the SLO error-
	// budget burn rate captured in each decision's gating inputs (e.g.
	// an slo.Engine's MaxBurnRate).
	BurnRate func() float64
}

// EpochReport describes what one epoch's coordination cycle concluded.
type EpochReport struct {
	// Migrated reports whether the placement changed.
	Migrated bool
	// Replicas is the placement after the epoch.
	Replicas []int
	// K is the replication degree after demand adaptation.
	K int
	// EstimatedOldMs / EstimatedNewMs are the summary-estimated mean
	// delays of the previous and proposed placements.
	EstimatedOldMs float64
	EstimatedNewMs float64
	// MovedReplicas counts locations that required a data copy.
	MovedReplicas int
	// SummaryBytes is the wire size of the collected micro-cluster
	// summaries — the online approach's entire bandwidth cost.
	SummaryBytes int
	// Degraded reports that at least one replica's summary could not be
	// collected and the epoch ran on a partial or stale view.
	Degraded bool
	// MissingSummaries lists the replicas that were unreachable.
	MissingSummaries []int
	// QuorumOK reports whether enough fresh summaries arrived to permit
	// k adaptation and migration; false guarantees the placement did
	// not change this epoch.
	QuorumOK bool
	// ActualMeanMs is the ground-truth mean access delay clients
	// observed over the epoch (0 when Accesses is 0), and Accesses how
	// many accesses it averages — the same observed figures the epoch's
	// ledger record carries.
	ActualMeanMs float64
	Accesses     int64
	// Leader is the write-path leader of the adopted placement, or -1
	// when the write path is disabled (WriteFraction == 0).
	Leader int
	// WriteCostOldMs / WriteCostNewMs are the leader write + fan-out
	// costs of the previous and proposed placements (0 when disabled).
	WriteCostOldMs float64
	WriteCostNewMs float64
}

// Manager is the live replica-placement loop for one object (or object
// group) over a deployment: it routes accesses to the predicted-closest
// replica, maintains the per-replica summaries, and migrates replicas at
// epoch boundaries per the paper's Algorithm 1.
//
// A Manager is safe for concurrent use: accesses may be recorded from
// many goroutines while another drives the epoch ticks. Every manager
// maintains runtime metrics and a trace of recent epochs, exposed by
// Snapshot.
type Manager struct {
	d    *Deployment
	dims int

	mu    sync.Mutex
	inner *replica.Manager

	reg  *metrics.Registry
	ring *metrics.TraceRing
	rec  *trace.FlightRecorder // nil unless ManagerConfig.Tracing
	// Ground-truth delay accumulated over the current epoch's accesses,
	// guarded by mu; reset at each epoch boundary.
	epochDelaySum float64
	epochAccesses int64
	actualMs      *metrics.Histogram
	actualMeanMs  *metrics.Gauge
}

// NewManager creates a manager on the deployment.
func (d *Deployment) NewManager(cfg ManagerConfig) (*Manager, error) {
	m := cfg.MicroClusters
	if m <= 0 {
		m = 10
	}
	dims := 0
	if d.matrix.N() > 0 {
		dims = d.coords[0].Pos.Dim()
	}
	for _, c := range cfg.Candidates {
		if c < 0 || c >= d.matrix.N() {
			return nil, fmt.Errorf("georep: candidate %d out of range", c)
		}
	}
	leaderPolicy, err := replog.ParseLeaderPolicy(cfg.LeaderPolicy)
	if err != nil {
		return nil, fmt.Errorf("georep: %w", err)
	}
	reg := metrics.NewRegistry()
	var rec *trace.FlightRecorder
	var tracer *trace.Tracer
	if cfg.Tracing {
		rec = trace.NewFlightRecorder(trace.DefaultRecent, trace.DefaultAnomalous)
		tracer = trace.New(rec, "coord")
	}
	rcfg := replica.Config{
		K:       cfg.K,
		M:       m,
		Dims:    dims,
		Metrics: reg,
		Migration: replica.MigrationPolicy{
			MinRelativeGain: cfg.MinRelativeGain,
			CostPerByte:     cfg.MigrationCostPerByte,
			GainPerMsAccess: cfg.LatencyValuePerMsAccess,
			ObjectBytes:     cfg.ObjectBytes,
		},
		KPolicy: replica.KPolicy{
			Min:         cfg.MinReplicas,
			Max:         cfg.MaxReplicas,
			GrowAbove:   cfg.GrowAbove,
			ShrinkBelow: cfg.ShrinkBelow,
		},
		DecayFactor:   cfg.DecayFactor,
		WindowEpochs:  cfg.WindowEpochs,
		IngestShards:  cfg.IngestShards,
		Quorum:        cfg.Quorum,
		Tracer:        tracer,
		Ledger:        cfg.Ledger,
		WriteFraction: cfg.WriteFraction,
		LeaderPolicy:  leaderPolicy,
		Provenance:    cfg.Provenance,
		BurnRate:      cfg.BurnRate,
	}
	inner, err := replica.NewManager(rcfg, cfg.Candidates, d.coords, cfg.InitialReplicas)
	if err != nil {
		return nil, fmt.Errorf("georep: new manager: %w", err)
	}
	return &Manager{
		d:            d,
		inner:        inner,
		dims:         dims,
		reg:          reg,
		ring:         metrics.NewTraceRing(64),
		rec:          rec,
		actualMs:     reg.Histogram("manager_actual_delay_ms", metrics.LatencyBuckets()),
		actualMeanMs: reg.Gauge("manager_epoch_actual_mean_ms"),
	}, nil
}

// TraceRecorder returns the manager's span flight recorder, or nil when
// the manager was built without ManagerConfig.Tracing. Each completed
// epoch is one span tree; degraded, below-quorum, migrating and
// latency-outlier epochs are pinned as anomalous.
func (m *Manager) TraceRecorder() *trace.FlightRecorder { return m.rec }

// Replicas returns the current replica locations.
func (m *Manager) Replicas() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Replicas()
}

// K returns the current replication degree.
func (m *Manager) K() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.K()
}

// Migrations returns how many epochs adopted a placement change.
func (m *Manager) Migrations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Migrations()
}

// RecordAccess routes one read from the client node to its predicted-
// closest replica, folds it into that replica's summary, and returns the
// serving replica together with the ground-truth RTT the client
// experienced. weight is the data volume transferred (use 1 for uniform
// requests).
func (m *Manager) RecordAccess(clientNode int, weight float64) (servedBy int, rttMs float64, err error) {
	if clientNode < 0 || clientNode >= m.d.matrix.N() {
		return 0, 0, fmt.Errorf("georep: client node %d out of range", clientNode)
	}
	m.mu.Lock()
	rep, err := m.inner.Record(m.d.coords[clientNode], weight)
	if err != nil {
		m.mu.Unlock()
		return rep, 0, err
	}
	rtt := m.d.matrix.RTT(clientNode, rep)
	m.epochDelaySum += rtt
	m.epochAccesses++
	m.mu.Unlock()
	m.actualMs.Observe(rtt)
	return rep, rtt, nil
}

// EndEpoch runs the coordinator cycle: collect summaries, adapt k,
// propose, migrate if approved, decay. The seed drives the weighted
// k-means initialization.
func (m *Manager) EndEpoch(seed int64) (EpochReport, error) {
	return m.EndEpochWithOutages(seed, nil)
}

// EndEpochWithOutages is EndEpoch under partial failure: summaries of
// the listed unreachable nodes cannot be collected, so the coordinator
// falls back to their last-known summaries with staleness decay. Below
// the configured quorum of fresh summaries the epoch is recorded as
// degraded and no placement change is committed.
func (m *Manager) EndEpochWithOutages(seed int64, unreachable []int) (EpochReport, error) {
	var reachable func(int) bool
	if len(unreachable) > 0 {
		down := make(map[int]bool, len(unreachable))
		for _, n := range unreachable {
			down[n] = true
		}
		reachable = func(node int) bool { return !down[node] }
	}
	m.mu.Lock()
	// Close the observed-delay window before the epoch decision so the
	// ledger record (written inside EndEpochDegraded) carries it.
	actualMean := 0.0
	if m.epochAccesses > 0 {
		actualMean = m.epochDelaySum / float64(m.epochAccesses)
	}
	accesses := m.epochAccesses
	m.epochDelaySum, m.epochAccesses = 0, 0
	m.inner.RecordObserved(actualMean, accesses)
	dec, err := m.inner.EndEpochDegraded(rand.New(rand.NewSource(seed)), reachable)
	if err != nil {
		m.mu.Unlock()
		return EpochReport{}, fmt.Errorf("georep: end epoch: %w", err)
	}
	epoch := m.inner.Epoch()
	m.mu.Unlock()

	m.actualMeanMs.Set(actualMean)
	m.ring.Add(metrics.EpochTrace{
		Epoch:            epoch,
		Migrated:         dec.Migrate,
		K:                dec.K,
		Replicas:         append([]int(nil), dec.NewReplicas...),
		EstimatedOldMs:   dec.EstimatedOldMs,
		EstimatedNewMs:   dec.EstimatedNewMs,
		ActualMeanMs:     actualMean,
		Accesses:         accesses,
		MovedReplicas:    dec.MovedReplicas,
		SummaryBytes:     dec.CollectedBytes,
		Degraded:         dec.Degraded,
		MissingSummaries: append([]int(nil), dec.MissingSummaries...),
	})
	return EpochReport{
		Migrated:         dec.Migrate,
		Replicas:         dec.NewReplicas,
		K:                dec.K,
		EstimatedOldMs:   dec.EstimatedOldMs,
		EstimatedNewMs:   dec.EstimatedNewMs,
		MovedReplicas:    dec.MovedReplicas,
		SummaryBytes:     dec.CollectedBytes,
		Degraded:         dec.Degraded,
		MissingSummaries: append([]int(nil), dec.MissingSummaries...),
		QuorumOK:         dec.QuorumOK,
		ActualMeanMs:     actualMean,
		Accesses:         accesses,
		Leader:           dec.Leader,
		WriteCostOldMs:   dec.WriteCostOldMs,
		WriteCostNewMs:   dec.WriteCostNewMs,
	}, nil
}

// HistogramStats summarizes one metrics histogram: observation count,
// sum, observed extrema, and interpolated percentiles.
type HistogramStats struct {
	Count         int64
	Sum           float64
	Min, Max      float64
	P50, P95, P99 float64
}

// EpochTrace is one retained epoch of the manager's decision history:
// what Algorithm 1 estimated, what it decided, what it cost in summary
// bytes and data copies, and the ground-truth delay clients actually saw.
type EpochTrace struct {
	Epoch            int
	Migrated         bool
	K                int
	Replicas         []int
	EstimatedOldMs   float64
	EstimatedNewMs   float64
	ActualMeanMs     float64
	Accesses         int64
	MovedReplicas    int
	SummaryBytes     int
	Degraded         bool
	MissingSummaries []int
}

// ManagerSnapshot is a point-in-time view of a manager's runtime
// metrics: counters and gauges by name, histogram summaries, and the
// most recent epoch traces oldest-first. Metric names are documented in
// the Observability section of README.md.
type ManagerSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramStats
	Epochs     []EpochTrace
}

// Snapshot captures the manager's metrics and recent epoch traces. It is
// safe to call concurrently with accesses and epoch ticks.
func (m *Manager) Snapshot() ManagerSnapshot {
	s := m.reg.Snapshot()
	out := ManagerSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramStats, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = HistogramStats{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}
	}
	for _, e := range m.ring.Snapshot() {
		out.Epochs = append(out.Epochs, EpochTrace{
			Epoch:            e.Epoch,
			Migrated:         e.Migrated,
			K:                e.K,
			Replicas:         e.Replicas,
			EstimatedOldMs:   e.EstimatedOldMs,
			EstimatedNewMs:   e.EstimatedNewMs,
			ActualMeanMs:     e.ActualMeanMs,
			Accesses:         e.Accesses,
			MovedReplicas:    e.MovedReplicas,
			SummaryBytes:     e.SummaryBytes,
			Degraded:         e.Degraded,
			MissingSummaries: e.MissingSummaries,
		})
	}
	return out
}

package georep_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/placement"
	"github.com/georep/georep/internal/replica"
)

// BenchmarkMultiObjectEpoch measures the amortized per-object epoch cost
// of the multi-object placement service against the naive loop it
// replaces (one standalone coordinator epoch per object). Objects fall
// into three demand classes, so at fleet scale the service collapses
// thousands of per-object k-means solves into a handful of group solves
// — after warm-up the dispatch loop mostly drift-skips — while the naive
// loop pays a full solve per object per epoch.
//
// Only the epoch step is timed (demand feeding is identical in both
// variants and runs with the clock stopped); ns_object is the timed cost
// divided by objects. scripts/bench_multiobject.sh compares the two
// variants at 10000 objects and gates on the ratio.
func BenchmarkMultiObjectEpoch(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 20)
	for i := range candidates {
		candidates[i] = i
	}
	const k, m, accesses = 3, 24, 30

	// feed records one epoch of demand for object idx: accesses drawn
	// from the object's class arc of client nodes, seeded per
	// (epoch, object) so both variants replay identical workloads.
	feed := func(b *testing.B, rec func(coord.Coordinate, float64) (int, error), epoch, idx int) {
		r := rand.New(rand.NewSource(41_000_003 + int64(epoch)*1_000_003 + int64(idx)))
		base := 20 + (idx%3)*33
		for a := 0; a < accesses; a++ {
			if _, err := rec(w.Coords[base+r.Intn(33)], 1); err != nil {
				b.Fatal(err)
			}
		}
	}

	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("naive/objects=%d", n), func(b *testing.B) {
			mgrs := make([]*replica.Manager, n)
			for i := range mgrs {
				var err error
				mgrs[i], err = replica.NewManager(replica.Config{K: k, M: m, Dims: 3},
					candidates, w.Coords, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			epoch := 0
			run := func(timed bool) {
				for i, mgr := range mgrs {
					feed(b, mgr.Record, epoch, i)
				}
				if timed {
					b.StartTimer()
				}
				for i, mgr := range mgrs {
					r := rand.New(rand.NewSource(7 + int64(epoch)<<32 + int64(i)))
					if _, err := mgr.EndEpoch(r); err != nil {
						b.Fatal(err)
					}
				}
				if timed {
					b.StopTimer()
				}
				epoch++
			}
			run(false)
			run(false)
			runtime.GC()
			b.ResetTimer()
			b.StopTimer()
			for it := 0; it < b.N; it++ {
				run(true)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns_object")
		})
		b.Run(fmt.Sprintf("amortized/objects=%d", n), func(b *testing.B) {
			svc, err := placement.NewService(placement.ServiceConfig{
				Object:         replica.Config{K: k, M: m, Dims: 3},
				Candidates:     candidates,
				Coords:         w.Coords,
				Seed:           7,
				GroupEpsilon:   0.25,
				DriftThreshold: 0.05,
				WarmStart:      true,
			})
			if err != nil {
				b.Fatal(err)
			}
			objs := make([]*placement.Object, n)
			for i := range objs {
				if objs[i], err = svc.Register(fmt.Sprintf("obj-%d", i), fmt.Sprintf("class-%d", i%3)); err != nil {
					b.Fatal(err)
				}
			}
			epoch := 0
			var last placement.EpochStats
			run := func(timed bool) {
				for i, o := range objs {
					feed(b, o.Record, epoch, i)
				}
				if timed {
					b.StartTimer()
				}
				st, err := svc.EndEpoch()
				if timed {
					b.StopTimer()
				}
				if err != nil {
					b.Fatal(err)
				}
				last = st
				epoch++
			}
			run(false)
			run(false)
			runtime.GC()
			b.ResetTimer()
			b.StopTimer()
			for it := 0; it < b.N; it++ {
				run(true)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns_object")
			b.ReportMetric(float64(last.Groups), "groups")
			b.ReportMetric(float64(last.Solves), "solves")
			if last.Decided != n {
				b.Fatalf("only %d of %d objects decided in the last epoch", last.Decided, n)
			}
		})
	}
}

package georep_test

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/georep/georep/internal/replica"
)

// BenchmarkWritePathOverhead measures what enabling the leader-based
// write path adds to a read-dominated manager epoch — 100 recorded
// accesses plus the collection/decision cycle. Leader election and
// write-fanout costing run once per epoch, not per access, so the
// enabled run must stay within a few percent of disabled;
// scripts/bench_writepath.sh turns that expectation into a gate and
// records both numbers in BENCH_writepath.json.
func BenchmarkWritePathOverhead(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 20)
	for i := range candidates {
		candidates[i] = i
	}
	epoch := func(b *testing.B, writeFraction float64) {
		// Both variants start from a settled heap: the sub-benchmarks run
		// back to back in one process, and whichever runs second would
		// otherwise inherit the first one's garbage as pure bias.
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mgr, err := replica.NewManager(replica.Config{K: 3, M: 10, Dims: 3, WriteFraction: writeFraction},
				candidates, w.Coords, nil)
			if err != nil {
				b.Fatal(err)
			}
			for c := 20; c < 120; c++ {
				if _, err := mgr.Record(w.Coords[c], 1); err != nil {
					b.Fatal(err)
				}
			}
			dec, err := mgr.EndEpoch(rand.New(rand.NewSource(3)))
			if err != nil {
				b.Fatal(err)
			}
			if writeFraction > 0 && dec.Leader < 0 {
				b.Fatal("write-enabled epoch elected no leader")
			}
			if writeFraction == 0 && dec.Leader != -1 {
				b.Fatal("write-disabled epoch leaked a leader")
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		epoch(b, 0)
	})
	b.Run("enabled", func(b *testing.B) {
		epoch(b, 0.3)
	})
}

package georep_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/vec"
	"github.com/georep/georep/internal/workload"
)

// The scale benchmarks pin the planet-scale access engine's two load-
// bearing claims: the generate-and-ingest hot path allocates nothing in
// steady state, and its per-access cost stays flat as the client
// population grows from 10k to 1M (the population only sizes the
// sampling tables built at construction time; the per-access work is an
// O(1) alias draw plus an O(1) shard fold). scripts/bench_scale.sh
// turns both into a gate and records the numbers in BENCH_scale.json.

const (
	benchScaleNodes   = 64
	benchScaleRegions = 8
	benchScaleDims    = 3
	benchScaleShards  = 8
	benchScaleBudget  = 8
	benchScaleBatch   = 4096
)

// benchScalePositions builds the node-indexed coordinate table the
// ingest path looks client positions up in.
func benchScalePositions() []vec.Vec {
	r := rand.New(rand.NewSource(11))
	pos := make([]vec.Vec, benchScaleNodes)
	for i := range pos {
		p := make(vec.Vec, benchScaleDims)
		for d := range p {
			p[d] = r.NormFloat64() * 50
		}
		pos[i] = p
	}
	return pos
}

// benchScaleStream builds a seeded streaming generator over a synthetic
// population of the given size, spread across 64 PoP nodes in 8 regions.
func benchScaleStream(tb testing.TB, clients, rate int) *workload.Stream {
	tb.Helper()
	nodes := make([]int, benchScaleNodes)
	regions := make([]int, benchScaleNodes)
	for i := range nodes {
		nodes[i] = i
		regions[i] = i % benchScaleRegions
	}
	specs, err := workload.SynthClients(rand.New(rand.NewSource(7)), clients, nodes, regions)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := workload.NewStream(workload.StreamSpec{
		Clients:         clients,
		Regions:         benchScaleRegions,
		Objects:         16,
		ZipfExponent:    0.8,
		MeanObjectBytes: 1,
		BatchSize:       benchScaleBatch,
		Rate:            rate,
		Churn:           0.02,
		DiurnalPeriod:   8,
	}, specs)
	if err != nil {
		tb.Fatal(err)
	}
	s.Seed(42)
	return s
}

// benchScaleServer builds a sharded replica ingest server.
func benchScaleServer(tb testing.TB) *replica.Server {
	tb.Helper()
	srv, err := replica.NewShardedServer(0, benchScaleShards, benchScaleBudget, benchScaleDims)
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// ingestBatch feeds one generated batch through the replica batch path,
// reusing the caller's scratch slices.
func ingestBatch(tb testing.TB, srv *replica.Server, pos []vec.Vec,
	batch []workload.Access, clients []int, weights []float64) ([]int, []float64) {
	clients = clients[:0]
	weights = weights[:0]
	for _, a := range batch {
		clients = append(clients, a.Client)
		weights = append(weights, a.Bytes)
	}
	if err := srv.RecordBatch(clients, pos, weights); err != nil {
		tb.Fatal(err)
	}
	return clients, weights
}

// TestScaleIngestSteadyStateZeroAlloc asserts the whole hot loop —
// drawing a batch from the stream and folding it into a sharded
// replica summary — allocates nothing once warm. This is the property
// that makes million-client epochs affordable; a single allocation per
// batch would show up here.
func TestScaleIngestSteadyStateZeroAlloc(t *testing.T) {
	stream := benchScaleStream(t, 50_000, 40_000)
	srv := benchScaleServer(t)
	pos := benchScalePositions()
	batch := make([]workload.Access, benchScaleBatch)
	clients := make([]int, 0, benchScaleBatch)
	weights := make([]float64, 0, benchScaleBatch)

	// Warm up: fill the shard summarizers to their budgets and size the
	// scratch slices so the measured runs are pure steady state.
	for i := 0; i < 8; i++ {
		clients, weights = ingestBatch(t, srv, pos, stream.Next(batch), clients, weights)
	}
	allocs := testing.AllocsPerRun(50, func() {
		clients, weights = ingestBatch(t, srv, pos, stream.Next(batch), clients, weights)
	})
	if allocs > 0 {
		t.Fatalf("steady-state generate+ingest allocates %.1f times per batch, want 0", allocs)
	}
	if srv.Accesses() == 0 {
		t.Fatal("ingest recorded nothing")
	}
}

// TestScaleAdvanceZeroAlloc asserts the epoch boundary of the stream
// (churn drift + alias reweight) also stays allocation-free, so long
// simulations do not accrete garbage at epoch ticks.
func TestScaleAdvanceZeroAlloc(t *testing.T) {
	stream := benchScaleStream(t, 20_000, 10_000)
	batch := make([]workload.Access, benchScaleBatch)
	stream.Next(batch)
	if err := stream.Advance(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := stream.Advance(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("stream.Advance allocates %.1f times per epoch, want 0", allocs)
	}
}

// BenchmarkScaleIngest measures the per-access cost of the hot loop at
// growing population sizes. The ns/access metric must stay flat from
// 10k to 1M clients — population size only affects table construction,
// which happens outside the timer. scripts/bench_scale.sh gates on the
// ratio of the largest to the smallest population's minimum ns/access.
func BenchmarkScaleIngest(b *testing.B) {
	for _, clients := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			stream := benchScaleStream(b, clients, clients)
			srv := benchScaleServer(b)
			pos := benchScalePositions()
			batch := make([]workload.Access, benchScaleBatch)
			cs := make([]int, 0, benchScaleBatch)
			ws := make([]float64, 0, benchScaleBatch)
			for i := 0; i < 4; i++ {
				cs, ws = ingestBatch(b, srv, pos, stream.Next(batch), cs, ws)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs, ws = ingestBatch(b, srv, pos, stream.Next(batch), cs, ws)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchScaleBatch), "ns/access")
		})
	}
}

// BenchmarkScaleEpoch compares a full epoch (generate + ingest + summary
// export) through the sharded and unsharded ingest paths on the same
// workload. Sharding pays a summary-time merge for contention-free
// ingest; this benchmark keeps that trade visible.
func BenchmarkScaleEpoch(b *testing.B) {
	const clients, rate = 100_000, 50_000
	variants := []struct {
		name  string
		build func(tb testing.TB) *replica.Server
	}{
		{"unsharded", func(tb testing.TB) *replica.Server {
			srv, err := replica.NewServer(0, benchScaleBudget, benchScaleDims)
			if err != nil {
				tb.Fatal(err)
			}
			return srv
		}},
		{"sharded", func(tb testing.TB) *replica.Server { return benchScaleServer(tb) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			stream := benchScaleStream(b, clients, rate)
			srv := v.build(b)
			pos := benchScalePositions()
			batch := make([]workload.Access, benchScaleBatch)
			cs := make([]int, 0, benchScaleBatch)
			ws := make([]float64, 0, benchScaleBatch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for bb := 0; bb < stream.EpochBatches(); bb++ {
					cs, ws = ingestBatch(b, srv, pos, stream.Next(batch), cs, ws)
				}
				got, err := srv.Export()
				if err != nil {
					b.Fatal(err)
				}
				if len(got) == 0 {
					b.Fatal("empty summary")
				}
				if err := srv.Decay(0.5); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rate), "ns/access")
		})
	}
}

package georep

import (
	"strings"
	"testing"
)

// TestManagerConfigValidation drives NewManager through the config edge
// cases: degenerate replication degrees, inverted k ranges, economic
// policy halves, decay-vs-window interaction, and candidate mistakes.
func TestManagerConfigValidation(t *testing.T) {
	d := smallDeployment(t)
	candidates := []int{0, 1, 2, 3, 4, 5}
	base := func() ManagerConfig {
		return ManagerConfig{K: 2, Candidates: candidates}
	}

	cases := []struct {
		name    string
		mutate  func(*ManagerConfig)
		wantErr string // substring of the expected error; "" means valid
	}{
		{"happy path", func(c *ManagerConfig) {}, ""},
		{"zero K", func(c *ManagerConfig) { c.K = 0 }, "K must be positive"},
		{"negative K", func(c *ManagerConfig) { c.K = -3 }, "K must be positive"},
		{"negative micro budget defaults", func(c *ManagerConfig) { c.MicroClusters = -1 }, ""},
		{
			"MaxReplicas below MinReplicas",
			func(c *ManagerConfig) { c.MinReplicas, c.MaxReplicas = 3, 1 },
			"invalid k range",
		},
		{
			"K outside replica range",
			func(c *ManagerConfig) { c.MinReplicas, c.MaxReplicas = 3, 4 },
			"outside [3,4]",
		},
		{
			"MaxReplicas beyond candidates",
			func(c *ManagerConfig) { c.MinReplicas, c.MaxReplicas = 2, len(candidates)+1 },
			"candidates",
		},
		{
			"negative demand thresholds",
			func(c *ManagerConfig) {
				c.MinReplicas, c.MaxReplicas = 1, 3
				c.GrowAbove, c.ShrinkBelow = -1, 0
			},
			"negative demand",
		},
		{
			"shrink threshold above grow",
			func(c *ManagerConfig) {
				c.MinReplicas, c.MaxReplicas = 1, 3
				c.GrowAbove, c.ShrinkBelow = 10, 20
			},
			"exceeds",
		},
		{"negative decay", func(c *ManagerConfig) { c.DecayFactor = -0.1 }, "DecayFactor"},
		{"decay above one", func(c *ManagerConfig) { c.DecayFactor = 1.5 }, "DecayFactor"},
		{"negative window", func(c *ManagerConfig) { c.WindowEpochs = -2 }, "WindowEpochs"},
		// WindowEpochs wins over DecayFactor by design: both set is valid
		// (decay is documented as ignored), even with a decay value that
		// would be rejected on its own... but only an in-range one.
		{
			"window with decay set",
			func(c *ManagerConfig) { c.WindowEpochs = 4; c.DecayFactor = 0.9 },
			"",
		},
		{
			"window with invalid decay still rejected",
			func(c *ManagerConfig) { c.WindowEpochs = 4; c.DecayFactor = 2 },
			"DecayFactor",
		},
		{"gain of one", func(c *ManagerConfig) { c.MinRelativeGain = 1 }, "MinRelativeGain"},
		{"negative gain", func(c *ManagerConfig) { c.MinRelativeGain = -0.5 }, "MinRelativeGain"},
		{
			"economics half-configured",
			func(c *ManagerConfig) { c.MigrationCostPerByte = 0.1 },
			"CostPerByte set but",
		},
		{
			"economics fully configured",
			func(c *ManagerConfig) {
				c.MigrationCostPerByte = 0.1
				c.LatencyValuePerMsAccess = 0.01
				c.ObjectBytes = 1 << 20
			},
			"",
		},
		{
			"candidate out of range",
			func(c *ManagerConfig) { c.Candidates = []int{0, 1, 9999} },
			"out of range",
		},
		{
			"initial replica not a candidate",
			func(c *ManagerConfig) { c.InitialReplicas = []int{0, 7} },
			"not a candidate",
		},
		{
			"initial replica count mismatch",
			func(c *ManagerConfig) { c.InitialReplicas = []int{0} },
			"initial replicas",
		},
		{"write fraction above one", func(c *ManagerConfig) { c.WriteFraction = 1.2 }, "WriteFraction"},
		{"unknown leader policy", func(c *ManagerConfig) { c.LeaderPolicy = "nearest" }, "leader policy"},
		{
			"write path fully configured",
			func(c *ManagerConfig) { c.WriteFraction = 0.3; c.LeaderPolicy = "fanout" },
			"",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			m, err := d.NewManager(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if got := m.K(); got != cfg.K {
					t.Errorf("K() = %d, want %d", got, cfg.K)
				}
				return
			}
			if err == nil {
				t.Fatalf("config accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestManagerWritePathReport checks the write path surfaces through the
// public manager: a write-enabled config names a leader in every epoch
// report, a read-only config pins it to -1.
func TestManagerWritePathReport(t *testing.T) {
	d := smallDeployment(t)
	run := func(wf float64) EpochReport {
		m, err := d.NewManager(ManagerConfig{
			K: 2, Candidates: []int{0, 1, 2, 3}, WriteFraction: wf,
		})
		if err != nil {
			t.Fatalf("NewManager: %v", err)
		}
		for i := 0; i < 40; i++ {
			if _, _, err := m.RecordAccess(4, 1); err != nil {
				t.Fatalf("RecordAccess: %v", err)
			}
		}
		rep, err := m.EndEpoch(7)
		if err != nil {
			t.Fatalf("EndEpoch: %v", err)
		}
		return rep
	}
	if rep := run(0); rep.Leader != -1 || rep.WriteCostOldMs != 0 {
		t.Fatalf("read-only report leaked write path: %+v", rep)
	}
	rep := run(0.4)
	if rep.Leader < 0 {
		t.Fatalf("write-enabled report has no leader: %+v", rep)
	}
	found := false
	for _, r := range rep.Replicas {
		if r == rep.Leader {
			found = true
		}
	}
	if !found {
		t.Fatalf("leader %d not in placement %v", rep.Leader, rep.Replicas)
	}
	if rep.WriteCostOldMs <= 0 {
		t.Fatalf("write cost not computed: %+v", rep)
	}
}

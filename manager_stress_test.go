package georep

import (
	"sync"
	"testing"
)

// TestManagerConcurrentStress hammers one Manager from many goroutines —
// recording accesses, ticking epochs, and taking snapshots all at once —
// and then checks that no update was lost. Run with -race.
func TestManagerConcurrentStress(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 10)
	m, err := d.NewManager(ManagerConfig{K: 3, Candidates: candidates})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers           = 8
		accessesPerWriter = 400
		epochs            = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < accessesPerWriter; i++ {
				client := clients[(w*accessesPerWriter+i)%len(clients)]
				if _, _, err := m.RecordAccess(client, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// One goroutine drives epoch ticks concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := 0; e < epochs; e++ {
			if _, err := m.EndEpoch(int64(e)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Two goroutines read state the whole time; correctness here is "does
	// not race or crash", validated by -race.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := m.Snapshot()
				if s.Counters["replica_accesses_total"] < 0 {
					t.Error("negative access counter")
					return
				}
				if got := len(m.Replicas()); got != m.K() {
					// K and Replicas are two separate locked calls, so a
					// migration may slip between them — but the replica
					// count can only ever be the degree at some moment,
					// which this config pins to 3.
					t.Errorf("replicas=%d, K=%d", got, m.K())
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: every access must be accounted for exactly once.
	if _, err := m.EndEpoch(int64(epochs)); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	const total = writers * accessesPerWriter
	if got := s.Counters["replica_accesses_total"]; got != total {
		t.Errorf("accesses counter = %d, want %d (lost updates)", got, total)
	}
	if got := s.Histograms["manager_actual_delay_ms"].Count; got != total {
		t.Errorf("actual-delay histogram count = %d, want %d", got, total)
	}
	if got := s.Counters["replica_epochs_total"]; got != epochs+1 {
		t.Errorf("epochs counter = %d, want %d", got, epochs+1)
	}
	var traced int64
	for _, e := range s.Epochs {
		traced += e.Accesses
	}
	if traced != total {
		t.Errorf("ring traces account for %d accesses, want %d", traced, total)
	}
}

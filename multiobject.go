package georep

import (
	"fmt"
	"sync"

	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/placement"
	"github.com/georep/georep/internal/replica"
)

// MultiObjectConfig parameterizes a multi-object placement service over
// a deployment: one shared latency/coordinate world, many replicated
// objects, amortized per-epoch placement compute.
type MultiObjectConfig struct {
	// Object is the per-object coordinator template. Its replication
	// degree must be pinned (MinReplicas/MaxReplicas/GrowAbove/
	// ShrinkBelow zero): group solves are sized for the fleet's common k.
	// InitialReplicas and Tracing are ignored (capacity accounting picks
	// initial slots; per-object span trees are a single-object feature).
	// A Ledger, when set, is shared by the whole fleet — records carry
	// each object's ID and class and interleave in registration order.
	Object ManagerConfig
	// GroupEpsilon is the demand-signature distance at which objects
	// share one placement solve. 0 keeps every object in its own group —
	// then every object's epoch is byte-identical to a standalone
	// Manager.
	GroupEpsilon float64
	// DriftThreshold skips a group's solve entirely when its demand
	// signature moved less than this since the last solve.
	DriftThreshold float64
	// WarmStart seeds each group's k-means from its previous centroids.
	WarmStart bool
	// Refine runs the exhaustive candidate-subset search after each
	// group solve; MaxRefineCandidates bounds the candidate count it
	// will search (0 = 16).
	Refine              bool
	MaxRefineCandidates int
	// Capacity, when non-nil, gives each candidate DC (aligned with
	// Object.Candidates) a replica-slot budget. Registration then
	// applies admission control and epochs displace replicas
	// deterministically when desired DCs are full.
	Capacity []int
	// Seed drives every epoch's group solves; the multi-object EndEpoch
	// takes no per-call seed so grouped and singleton runs stay
	// reproducible from configuration alone.
	Seed int64
}

// MultiObject is a fleet of replicated objects placed over one
// deployment with shared epoch compute. Register objects, feed accesses
// through their handles, call EndEpoch once per placement period.
type MultiObject struct {
	d   *Deployment
	svc *placement.Service
	reg *metrics.Registry

	mu      sync.Mutex
	handles []*ManagedObject
}

// ManagedObject is one object's handle: routing, access recording, and
// the per-object ground-truth delay window.
type ManagedObject struct {
	mo  *MultiObject
	obj *placement.Object

	mu       sync.Mutex
	delaySum float64
	accesses int64
}

// NewMultiObject builds a multi-object placement service on the
// deployment.
func (d *Deployment) NewMultiObject(cfg MultiObjectConfig) (*MultiObject, error) {
	m := cfg.Object.MicroClusters
	if m <= 0 {
		m = 10
	}
	dims := 0
	if d.matrix.N() > 0 {
		dims = d.coords[0].Pos.Dim()
	}
	for _, c := range cfg.Object.Candidates {
		if c < 0 || c >= d.matrix.N() {
			return nil, fmt.Errorf("georep: candidate %d out of range", c)
		}
	}
	reg := metrics.NewRegistry()
	svc, err := placement.NewService(placement.ServiceConfig{
		Object: replica.Config{
			K:       cfg.Object.K,
			M:       m,
			Dims:    dims,
			Metrics: reg,
			Migration: replica.MigrationPolicy{
				MinRelativeGain: cfg.Object.MinRelativeGain,
				CostPerByte:     cfg.Object.MigrationCostPerByte,
				GainPerMsAccess: cfg.Object.LatencyValuePerMsAccess,
				ObjectBytes:     cfg.Object.ObjectBytes,
			},
			DecayFactor:  cfg.Object.DecayFactor,
			WindowEpochs: cfg.Object.WindowEpochs,
			IngestShards: cfg.Object.IngestShards,
			Quorum:       cfg.Object.Quorum,
			Ledger:       cfg.Object.Ledger,
			Provenance:   cfg.Object.Provenance,
			BurnRate:     cfg.Object.BurnRate,
		},
		Candidates:          cfg.Object.Candidates,
		Coords:              d.coords,
		GroupEpsilon:        cfg.GroupEpsilon,
		DriftThreshold:      cfg.DriftThreshold,
		WarmStart:           cfg.WarmStart,
		Refine:              cfg.Refine,
		MaxRefineCandidates: cfg.MaxRefineCandidates,
		Capacity:            cfg.Capacity,
		Seed:                cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("georep: new multi-object service: %w", err)
	}
	return &MultiObject{d: d, svc: svc, reg: reg}, nil
}

// Register adds an object under an id and workload class. With capacity
// accounting on, registration is rejected when the fleet's aggregate
// replica demand would exceed the aggregate slot budget.
func (mo *MultiObject) Register(id, class string) (*ManagedObject, error) {
	obj, err := mo.svc.Register(id, class)
	if err != nil {
		return nil, fmt.Errorf("georep: register object: %w", err)
	}
	h := &ManagedObject{mo: mo, obj: obj}
	mo.mu.Lock()
	mo.handles = append(mo.handles, h)
	mo.mu.Unlock()
	return h, nil
}

// Objects returns the number of registered objects.
func (mo *MultiObject) Objects() int { return mo.svc.Objects() }

// RecordAccess routes one read of this object from the client node to
// its predicted-closest replica and returns the serving replica with the
// ground-truth RTT.
func (h *ManagedObject) RecordAccess(clientNode int, weight float64) (servedBy int, rttMs float64, err error) {
	if clientNode < 0 || clientNode >= h.mo.d.matrix.N() {
		return 0, 0, fmt.Errorf("georep: client node %d out of range", clientNode)
	}
	rep, err := h.obj.Record(h.mo.d.coords[clientNode], weight)
	if err != nil {
		return rep, 0, err
	}
	rtt := h.mo.d.matrix.RTT(clientNode, rep)
	h.mu.Lock()
	h.delaySum += rtt
	h.accesses++
	h.mu.Unlock()
	return rep, rtt, nil
}

// Replicas returns the object's current replica locations.
func (h *ManagedObject) Replicas() []int { return h.obj.Replicas() }

// MultiEpochReport summarizes one fleet-wide epoch: how much solve work
// the demand-signature grouping dispatched versus the naive
// one-solve-per-object bill, and what the capacity settlement did.
type MultiEpochReport struct {
	// Epoch counts completed fleet epochs; Objects the registered fleet;
	// Decided how many objects reached the placement machinery (quorum
	// met, non-silent).
	Epoch, Objects, Decided int
	// Groups is how many demand-signature groups formed; Solves how many
	// ran a k-means; DriftSkips how many reused a cached placement.
	Groups, Solves, DriftSkips int
	// Refined counts groups the branch-and-bound search improved;
	// BoundHits incumbents served from the signature-keyed cache.
	Refined, BoundHits int
	// Migrated counts objects that adopted a changed placement;
	// Displaced replicas pushed off their preferred DC by capacity.
	Migrated, Displaced int
}

// EndEpoch runs one fleet-wide placement epoch: every object's summaries
// are collected, objects with near-identical demand signatures share one
// placement solve, capacity is settled, and each object migrates (or
// not) under its own policy. Deterministic for a fixed configuration and
// workload.
func (mo *MultiObject) EndEpoch() (MultiEpochReport, error) {
	// Close each object's observed-delay window first so ledger records
	// carry the epoch's ground truth.
	mo.mu.Lock()
	handles := mo.handles
	mo.mu.Unlock()
	for _, h := range handles {
		h.mu.Lock()
		mean := 0.0
		if h.accesses > 0 {
			mean = h.delaySum / float64(h.accesses)
		}
		n := h.accesses
		h.delaySum, h.accesses = 0, 0
		h.mu.Unlock()
		h.obj.RecordObserved(mean, n)
	}
	st, err := mo.svc.EndEpoch()
	if err != nil {
		return MultiEpochReport{}, fmt.Errorf("georep: multi-object epoch: %w", err)
	}
	return MultiEpochReport{
		Epoch: st.Epoch, Objects: st.Objects, Decided: st.Decided,
		Groups: st.Groups, Solves: st.Solves, DriftSkips: st.DriftSkips,
		Refined: st.Refined, BoundHits: st.BoundHits,
		Migrated: st.Migrated, Displaced: st.Displaced,
	}, nil
}

// Snapshot captures the fleet's shared metrics registry (per-object
// manager metrics aggregate across the fleet; placement_* gauges and
// counters describe the service's amortization and capacity activity).
func (mo *MultiObject) Snapshot() ManagerSnapshot {
	s := mo.reg.Snapshot()
	out := ManagerSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramStats, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = HistogramStats{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}
	}
	return out
}

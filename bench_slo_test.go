package georep_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/slo"
)

// BenchmarkSLOOverhead measures what live SLO evaluation adds to the
// hot epoch path: a full manager epoch (100 recorded accesses plus the
// collection/decision cycle) against a wired metrics registry, with
// the disabled variant stopping there and the enabled variant also
// sampling the registry into the history ring and evaluating a
// two-objective burn-rate spec — exactly what the daemon sampler and
// the experiment harnesses do once per tick. Sampling is a snapshot
// into a preallocated ring and evaluation is a handful of windowed
// delta queries, so the enabled side must stay within a few percent;
// scripts/bench_slo.sh turns that into a gate and records both numbers
// in BENCH_slo.json.
func BenchmarkSLOOverhead(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 20)
	for i := range candidates {
		candidates[i] = i
	}
	const spec = "availability ratio(bench_bad_total / bench_ops_total) <= 0.001; " +
		"latency p99(bench_delay_ms) <= 250 budget 0.02"

	epoch := func(b *testing.B, withSLO bool) {
		// Engine, history, and manager are built once — that is how every
		// caller runs them (daemon sampler, experiment harness) — so the
		// loop prices only the recurring per-epoch work.
		reg := metrics.NewRegistry()
		mgr, err := replica.NewManager(replica.Config{K: 3, M: 10, Dims: 3, Metrics: reg},
			candidates, w.Coords, nil)
		if err != nil {
			b.Fatal(err)
		}
		var (
			hist *metrics.History
			eng  *slo.Engine
			ops  = reg.Counter("bench_ops_total")
			bad  = reg.Counter("bench_bad_total")
			dh   = reg.Histogram("bench_delay_ms", []float64{50, 100, 250, 500})
		)
		if withSLO {
			sp, err := slo.Parse(spec)
			if err != nil {
				b.Fatal(err)
			}
			hist = metrics.NewHistory(reg, 64)
			if eng, err = slo.New(sp, slo.Config{History: hist}); err != nil {
				b.Fatal(err)
			}
		}
		// Both variants start from a settled heap: the sub-benchmarks run
		// back to back in one process, and whichever runs second would
		// otherwise inherit the first one's garbage as pure bias.
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := 20; c < 120; c++ {
				if _, err := mgr.Record(w.Coords[c], 1); err != nil {
					b.Fatal(err)
				}
				ops.Add(1)
				dh.Observe(float64(c))
			}
			bad.Add(0)
			if _, err := mgr.EndEpoch(rand.New(rand.NewSource(3))); err != nil {
				b.Fatal(err)
			}
			if withSLO {
				now := int64(i+1) * int64(10*time.Second)
				hist.Sample(now)
				eng.Evaluate(now)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		epoch(b, false)
	})
	b.Run("enabled", func(b *testing.B) {
		epoch(b, true)
	})
}

// Tracereplay: evaluate the placement system against an application
// access trace — the workflow for plugging in real production logs. A
// synthetic two-group trace is written to CSV, read back (exactly what
// you would do with converted application logs), and replayed against a
// deployment; the report shows the latency clients actually experienced
// while replicas migrated mid-trace.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/georep/georep"
)

func main() {
	dep, err := georep.Simulate(5, georep.WithNodes(100))
	if err != nil {
		log.Fatal(err)
	}
	var candidates, clients []int
	for i := 0; i < dep.Nodes(); i++ {
		if i < 12 {
			candidates = append(candidates, i)
		} else {
			clients = append(clients, i)
		}
	}

	// Build a synthetic trace: "analytics" is read by the 30 clients
	// with the lowest predicted RTT to anchor A, "frontend" by everyone,
	// Poisson-ish arrivals over an hour of trace time.
	anchor := clients[0]
	byDist := append([]int(nil), clients...)
	sort.Slice(byDist, func(i, j int) bool {
		return dep.PredictedRTT(byDist[i], anchor) < dep.PredictedRTT(byDist[j], anchor)
	})
	analyticsUsers := byDist[:30]

	r := rand.New(rand.NewSource(9))
	var events []georep.AccessEvent
	const hourMs = 3_600_000
	for t := 0.0; t < hourMs; t += r.ExpFloat64() * 400 {
		if r.Float64() < 0.4 {
			u := analyticsUsers[r.Intn(len(analyticsUsers))]
			events = append(events, georep.AccessEvent{
				TimeMs: t, Client: u, Group: "analytics", Bytes: 4096,
			})
		} else {
			u := clients[r.Intn(len(clients))]
			events = append(events, georep.AccessEvent{
				TimeMs: t, Client: u, Group: "frontend", Bytes: 512,
			})
		}
	}

	// Round-trip through the CSV format, as a converted production log
	// would arrive.
	var buf bytes.Buffer
	if err := georep.WriteTrace(&buf, events); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d events, %d bytes of CSV\n", len(events), buf.Len())
	loaded, err := georep.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}

	res, err := dep.Replay(loaded, georep.ReplayConfig{
		Manager: georep.ManagerConfig{
			K:               2,
			Candidates:      candidates,
			MinRelativeGain: 0.05,
		},
		EpochMs: hourMs / 6, // six coordinator cycles over the trace
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d accesses over %d epochs\n", res.Accesses, res.Epochs)
	fmt.Printf("mean observed delay: %.1f ms (includes pre-migration epochs)\n", res.MeanDelayMs)
	fmt.Printf("migrations: %d, total summary traffic: %d bytes\n", res.Migrations, res.SummaryBytes)
	for group, reps := range res.FinalReplicas {
		users := clients
		if group == "analytics" {
			users = analyticsUsers
		}
		delay, err := dep.MeanAccessDelay(users, reps)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := dep.MeanAccessDelay(users, candidates[:2])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s final replicas %v: %.1f ms for its users (naive first-2: %.1f ms)\n",
			group, reps, delay, naive)
	}
}

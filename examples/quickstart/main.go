// Quickstart: simulate global deployments, place 3 replicas with every
// strategy, and compare the mean client access delay against the true
// optimum — the paper's core experiment in ~50 lines of API use.
// Results are averaged over several deployments, mirroring the paper's
// averaging over 30 simulation runs.
package main

import (
	"fmt"
	"log"

	"github.com/georep/georep"
)

func main() {
	const (
		deployments = 5
		numDCs      = 20
		k           = 3
	)
	totals := make(map[georep.Strategy]float64)

	for seed := int64(1); seed <= deployments; seed++ {
		// A synthetic 226-node PlanetLab-like testbed with RNP coordinates.
		dep, err := georep.Simulate(seed)
		if err != nil {
			log.Fatal(err)
		}
		// The first 20 nodes act as candidate data centers; everyone else
		// is a client that wants the data with minimal latency.
		var candidates, clients []int
		for i := 0; i < dep.Nodes(); i++ {
			if i < numDCs {
				candidates = append(candidates, i)
			} else {
				clients = append(clients, i)
			}
		}
		cfg := georep.PlaceConfig{
			K:          k,
			Candidates: candidates,
			Clients:    clients,
			Seed:       seed * 17,
		}
		for _, s := range georep.Strategies() {
			p, err := dep.Place(s, cfg)
			if err != nil {
				log.Fatal(err)
			}
			totals[p.Strategy] += p.MeanDelayMs
		}
	}

	fmt.Printf("placing %d replicas across %d candidate data centers (%d deployments)\n\n",
		k, numDCs, deployments)
	fmt.Printf("%-16s%22s\n", "strategy", "mean access delay")
	for _, s := range georep.Strategies() {
		fmt.Printf("%-16s%19.1f ms\n", s, totals[s]/deployments)
	}
	fmt.Printf("\nonline micro-clustering is %.0f%% faster than random placement\n",
		100*(1-totals[georep.StrategyOnline]/totals[georep.StrategyRandom]))
}

// Geocdn: a content-distribution scenario with follow-the-sun demand.
// Three user populations on different continents take turns being active;
// the replica manager summarizes each epoch's accesses, estimates the
// benefit of moving, and gradually migrates the replicas toward the
// active population — the paper's motivating "gradual migration" story.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/georep/georep"
)

func main() {
	dep, err := georep.Simulate(7, georep.WithNodes(120))
	if err != nil {
		log.Fatal(err)
	}

	// Candidates: 15 data centers. Clients: everyone else.
	var candidates, clients []int
	for i := 0; i < dep.Nodes(); i++ {
		if i < 15 {
			candidates = append(candidates, i)
		} else {
			clients = append(clients, i)
		}
	}

	// Build three geographically separated population anchors with a
	// farthest-point sweep over predicted RTTs, then assign every client
	// to its nearest anchor. Each "time zone" is one population.
	anchors := []int{clients[0]}
	for len(anchors) < 3 {
		best, bestD := -1, -1.0
		for _, c := range clients {
			d := math.Inf(1)
			for _, a := range anchors {
				if v := dep.PredictedRTT(c, a); v < d {
					d = v
				}
			}
			if d > bestD {
				best, bestD = c, d
			}
		}
		anchors = append(anchors, best)
	}
	population := make(map[int][]int, 3)
	for _, c := range clients {
		best, bestD := 0, math.Inf(1)
		for zi, a := range anchors {
			if v := dep.PredictedRTT(c, a); v < bestD {
				best, bestD = zi, v
			}
		}
		population[best] = append(population[best], c)
	}

	mgr, err := dep.NewManager(georep.ManagerConfig{
		K:             2,
		MicroClusters: 8,
		Candidates:    candidates,
		// Require a 10% estimated improvement before paying for a move —
		// the paper's migration-cost threshold.
		MinRelativeGain: 0.10,
		DecayFactor:     0.3, // forget fast: demand shifts every epoch
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("follow-the-sun demand over 9 epochs, 2 replicas, 15 data centers")
	fmt.Printf("%-8s%-12s%-22s%16s%14s\n", "epoch", "hot zone", "replicas", "mean delay", "migrated")
	for epoch := 0; epoch < 9; epoch++ {
		zone := epoch % 3
		// The hot zone issues 10x the traffic of the others.
		for zi, members := range population {
			reads := 2
			if zi == zone {
				reads = 20
			}
			for _, c := range members {
				for i := 0; i < reads; i++ {
					if _, _, err := mgr.RecordAccess(c, 1); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		report, err := mgr.EndEpoch(int64(epoch))
		if err != nil {
			log.Fatal(err)
		}
		// Evaluate against the *currently hot* population with ground
		// truth RTTs.
		delay, err := dep.MeanAccessDelay(population[zone], report.Replicas)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d%-12d%-22s%13.1f ms%14v\n",
			epoch, zone, fmt.Sprint(report.Replicas), delay,
			report.Migrated && report.MovedReplicas > 0)
	}
	fmt.Printf("\n%d epochs triggered a migration; each decision shipped only the\n"+
		"micro-cluster summaries (≈ a few hundred bytes per replica), never\n"+
		"the raw access log.\n", mgr.Migrations())
}

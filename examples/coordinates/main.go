// Coordinates: compare the two network coordinate systems (Vivaldi and
// the paper's RNP) on the same synthetic testbed — the §III-A claim that
// RNP keeps prediction error low even with noisy measurements.
package main

import (
	"fmt"
	"log"

	"github.com/georep/georep"
)

func main() {
	fmt.Println("embedding a 150-node testbed under 20% measurement noise")
	fmt.Printf("%-10s%18s%15s%14s%14s\n",
		"algo", "median |err| ms", "p90 |err| ms", "median rel", "frac <10ms")
	for _, algo := range []string{"vivaldi", "rnp"} {
		dep, err := georep.Simulate(3,
			georep.WithNodes(150),
			georep.WithCoordinateAlgorithm(algo),
			georep.WithMeasurementNoise(0.2),
			georep.WithEmbeddingRounds(400),
		)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := dep.EmbeddingAccuracy()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s%18.2f%15.2f%14.3f%14.2f\n",
			algo, acc.MedianAbsMs, acc.P90AbsMs, acc.MedianRel, acc.FracUnder10ms)
	}
	fmt.Println("\nlower is better everywhere except the last column;")
	fmt.Println("coordinates are what lets clients pick the closest replica without probing it")
}

// Kvcluster: the full system as real networked processes. Storage
// daemons listen on localhost TCP ports and emulate wide-area RTTs by
// delaying reads according to a synthetic latency matrix. Clients fetch
// an object from the predicted-closest replica; each daemon summarizes
// its readers into micro-clusters; a coordinator collects the summaries
// over the wire, runs weighted k-means, and migrates the replicas with
// plain put/delete RPCs — Algorithm 1 end to end, with actual sockets.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"github.com/georep/georep"
	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/store"
	"github.com/georep/georep/internal/vec"
)

// timescale shrinks emulated WAN delays so the demo finishes quickly
// while preserving relative latencies.
const timescale = 0.02

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dep, err := georep.Simulate(11, georep.WithNodes(16), georep.WithEmbeddingRounds(250))
	if err != nil {
		return err
	}
	candidates := []int{0, 1, 2, 3, 4}
	var clients []int
	for i := len(candidates); i < dep.Nodes(); i++ {
		clients = append(clients, i)
	}

	// Internal coordinate form for the coordinator's clustering step.
	coords := make([]coord.Coordinate, dep.Nodes())
	for i := range coords {
		c := dep.Coordinate(i)
		coords[i] = coord.Coordinate{Pos: vec.Vec(c.Pos), Height: c.Height}
	}

	// Start one daemon per candidate data center, each emulating the RTT
	// between itself and whichever client calls it.
	nodes := make(map[int]*daemon.Node, len(candidates))
	conns := make(map[int]*daemon.Client, len(candidates))
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, dc := range candidates {
		dc := dc
		n, err := daemon.NewNode(daemon.Config{
			ID:            dc,
			MicroClusters: 6,
			Dims:          len(coords[dc].Pos),
			Delay: func(client int) time.Duration {
				if client < 0 || client >= dep.Nodes() {
					return 0 // coordinator traffic: no emulated WAN delay
				}
				return time.Duration(dep.RTT(client, dc) * timescale * float64(time.Millisecond))
			},
		})
		if err != nil {
			return err
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			return err
		}
		nodes[dc] = n
		c, err := daemon.DialNode(n.Addr(), 2*time.Second)
		if err != nil {
			return err
		}
		conns[dc] = c
		fmt.Printf("data center %d listening on %s\n", dc, n.Addr())
	}

	// The object starts at the worst possible pair of data centers — the
	// state a static system would be stuck in after its users moved.
	const objectID = "video/popular.mp4"
	payload := []byte("pretend this is a large media object")
	catalog := store.NewCatalog()
	replicas := []int{candidates[0], candidates[1]}
	worst := -1.0
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			d, err := dep.MeanAccessDelay(clients, []int{candidates[i], candidates[j]})
			if err != nil {
				return err
			}
			if d > worst {
				worst = d
				replicas = []int{candidates[i], candidates[j]}
			}
		}
	}
	for _, dc := range replicas {
		if err := conns[dc].Put(objectID, payload, 1); err != nil {
			return err
		}
	}
	if err := catalog.Set(store.ObjectID(objectID), replicas); err != nil {
		return err
	}

	readEpoch := func() (meanMs float64, err error) {
		var total float64
		var count int
		reps := catalog.Replicas(store.ObjectID(objectID))
		for round := 0; round < 4; round++ {
			for _, cl := range clients {
				// Client-side routing: predicted-closest replica.
				best, bestD := reps[0], math.Inf(1)
				for _, rep := range reps {
					if d := dep.PredictedRTT(cl, rep); d < bestD {
						best, bestD = rep, d
					}
				}
				_, rtt, err := conns[best].Get(cl, dep.Coordinate(cl).Pos, objectID)
				if err != nil {
					return 0, err
				}
				total += rtt.Seconds() * 1000 / timescale // back to emulated ms
				count++
			}
		}
		return total / float64(count), nil
	}

	before, err := readEpoch()
	if err != nil {
		return err
	}
	fmt.Printf("\nepoch 1: replicas=%v observed mean read latency %.0f ms (emulated)\n",
		catalog.Replicas(store.ObjectID(objectID)), before)

	// Coordinator cycle: collect summaries over the wire, macro-cluster,
	// and migrate if the placement improves.
	var micros []cluster.Micro
	var summaryBytes int
	for _, dc := range catalog.Replicas(store.ObjectID(objectID)) {
		ms, n, err := conns[dc].Micros()
		if err != nil {
			return err
		}
		micros = append(micros, ms...)
		summaryBytes += n
	}
	proposed, err := replica.ProposePlacement(rand.New(rand.NewSource(1)), micros, 2, candidates, coords)
	if err != nil {
		return err
	}
	oldEst, err := replica.EstimateMeanDelay(micros, catalog.Replicas(store.ObjectID(objectID)), coords)
	if err != nil {
		return err
	}
	newEst, err := replica.EstimateMeanDelay(micros, proposed, coords)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator: collected %dB of summaries, estimate %.0f → %.0f ms, proposing %v\n",
		summaryBytes, oldEst, newEst, proposed)

	if newEst < oldEst {
		ops, err := store.PlanMigration(store.ObjectID(objectID),
			catalog.Replicas(store.ObjectID(objectID)), proposed)
		if err != nil {
			return err
		}
		for _, op := range ops {
			if op.Copy {
				resp, _, err := conns[op.Source].Get(-1, nil, objectID)
				if err != nil {
					return err
				}
				if err := conns[op.Target].Put(objectID, resp.Data, resp.Version+1); err != nil {
					return err
				}
				fmt.Printf("  copied %s: DC %d → DC %d\n", objectID, op.Source, op.Target)
			} else {
				if err := conns[op.Target].Delete(objectID); err != nil {
					return err
				}
				fmt.Printf("  deleted %s at DC %d\n", objectID, op.Target)
			}
		}
		if err := catalog.Set(store.ObjectID(objectID), proposed); err != nil {
			return err
		}
	}

	after, err := readEpoch()
	if err != nil {
		return err
	}
	fmt.Printf("\nepoch 2: replicas=%v observed mean read latency %.0f ms (emulated)\n",
		catalog.Replicas(store.ObjectID(objectID)), after)
	fmt.Printf("migration cut observed latency by %.0f%%\n", 100*(1-after/before))
	return nil
}

package georep

import "github.com/georep/georep/internal/ledger"

// Ledger is the durable decision ledger: an append-only, CRC-framed,
// crash-recoverable on-disk log of every manager epoch's decision
// inputs and outcome. Pass one to ManagerConfig.Ledger to record a
// manager's history, then audit it offline with `georepctl audit` (or
// internal/audit as a library). The aliases re-export the internal
// implementation so callers outside this module can open and configure
// a ledger without reaching into internal packages.
type Ledger = ledger.Ledger

// LedgerOptions tunes segment rotation, total-size compaction and the
// fsync policy; the zero value is production-ready (4 MiB segments,
// 64 MiB ledger, no fsync).
type LedgerOptions = ledger.Options

// OpenLedger opens (creating or recovering) the decision ledger in dir.
// The caller owns the returned ledger's lifecycle: Close it after the
// last EndEpoch, and do not share one ledger between managers.
func OpenLedger(dir string, opt LedgerOptions) (*Ledger, error) {
	return ledger.Open(dir, opt)
}

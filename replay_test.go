package georep

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceCSVRoundTripFacade(t *testing.T) {
	events := []AccessEvent{
		{TimeMs: 1, Client: 10, Group: "g1", Bytes: 100},
		{TimeMs: 2, Client: 11, Group: "g2", Bytes: 200},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != events[0] || back[1] != events[1] {
		t.Errorf("round trip: %+v", back)
	}
	if _, err := ReadTrace(strings.NewReader("bad,row\n")); err == nil {
		t.Error("malformed trace should fail")
	}
}

func TestReplayFacade(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 10)

	// Synthesize a trace: every client reads "lib" 4 times over 4
	// epochs' worth of trace time.
	var events []AccessEvent
	tm := 0.0
	for round := 0; round < 4; round++ {
		for _, c := range clients {
			events = append(events, AccessEvent{
				TimeMs: tm, Client: c, Group: "lib", Bytes: 1,
			})
			tm += 1
		}
	}
	res, err := d.Replay(events, ReplayConfig{
		Manager: ManagerConfig{K: 3, Candidates: candidates},
		EpochMs: tm / 4,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != len(events) {
		t.Errorf("accesses = %d, want %d", res.Accesses, len(events))
	}
	if res.Epochs < 4 {
		t.Errorf("epochs = %d, want >= 4", res.Epochs)
	}
	if res.MeanDelayMs <= 0 {
		t.Errorf("mean delay = %v", res.MeanDelayMs)
	}
	final := res.FinalReplicas["lib"]
	if len(final) != 3 {
		t.Fatalf("final replicas = %v", final)
	}
	// The final placement must be no worse than the naive initial one
	// (first K candidates) on ground truth.
	initial, err := d.MeanAccessDelay(clients, candidates[:3])
	if err != nil {
		t.Fatal(err)
	}
	after, err := d.MeanAccessDelay(clients, final)
	if err != nil {
		t.Fatal(err)
	}
	if after > initial*1.02 {
		t.Errorf("replayed placement (%v ms) worse than initial (%v ms)", after, initial)
	}
	if res.SummaryBytes <= 0 {
		t.Error("summary bytes not accounted")
	}
}

func TestReplayFacadeValidation(t *testing.T) {
	d := smallDeployment(t)
	candidates, _ := splitNodes(d, 10)
	if _, err := d.Replay(nil, ReplayConfig{
		Manager: ManagerConfig{K: 2, Candidates: candidates}, EpochMs: 10,
	}); err == nil {
		t.Error("no events should fail")
	}
	events := []AccessEvent{{TimeMs: 1, Client: 15, Group: "g", Bytes: 1}}
	if _, err := d.Replay(events, ReplayConfig{
		Manager: ManagerConfig{K: 0, Candidates: candidates}, EpochMs: 10,
	}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := d.Replay(events, ReplayConfig{
		Manager: ManagerConfig{K: 2, Candidates: []int{0, 9999}}, EpochMs: 10,
	}); err == nil {
		t.Error("bad candidate should fail")
	}
	if _, err := d.Replay(events, ReplayConfig{
		Manager: ManagerConfig{K: 2, Candidates: candidates}, EpochMs: 0,
	}); err == nil {
		t.Error("zero epoch should fail")
	}
}

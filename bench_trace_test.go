package georep_test

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/trace"
)

// BenchmarkTraceOverhead measures what the tracing layer adds to a full
// manager epoch — 100 recorded accesses plus the collection/decision
// cycle — with the flight recorder off (nil tracer, every span call a
// no-op) and on. Tracing is per-epoch, not per-access, so the enabled
// run should stay within a few percent of disabled; scripts/
// bench_trace.sh turns that expectation into a gate and records both
// numbers in BENCH_trace.json.
func BenchmarkTraceOverhead(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 20)
	for i := range candidates {
		candidates[i] = i
	}
	epoch := func(b *testing.B, tracer *trace.Tracer) {
		// Both variants start from a settled heap: the sub-benchmarks run
		// back to back in one process, and whichever runs second would
		// otherwise inherit the first one's garbage as pure bias.
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mgr, err := replica.NewManager(replica.Config{K: 3, M: 10, Dims: 3, Tracer: tracer},
				candidates, w.Coords, nil)
			if err != nil {
				b.Fatal(err)
			}
			for c := 20; c < 120; c++ {
				if _, err := mgr.Record(w.Coords[c], 1); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := mgr.EndEpoch(rand.New(rand.NewSource(3))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		epoch(b, nil)
	})
	b.Run("enabled", func(b *testing.B) {
		rec := trace.NewFlightRecorder(trace.DefaultRecent, trace.DefaultAnomalous)
		epoch(b, trace.New(rec, "coord"))
		if rec.Len() == 0 {
			b.Fatal("enabled run recorded no traces")
		}
	})
}

// Package georep is a library for latency-driven data replication across
// data centers, reproducing Ping et al., "Towards Optimal Data
// Replication Across Data Centers" (ICDCS Workshops 2011).
//
// The system assigns every node a synthetic network coordinate, keeps a
// tiny micro-cluster summary of recent client accesses at each replica,
// periodically macro-clusters the summaries with weighted k-means, and
// migrates replicas toward the resulting population centroids when the
// estimated latency gain justifies the migration cost. The result is a
// replica placement whose mean client access delay tracks the true
// optimum while shipping only O(k·m) bytes of summary per decision,
// regardless of how many clients access the data.
//
// Three layers are exposed:
//
//   - Deployment: a set of nodes with pairwise RTTs (synthetic or loaded
//     from measurements) and network coordinates embedded over them.
//   - One-shot placement: Place runs a named strategy (random, offline
//     k-means, the paper's online algorithm, exhaustive optimal, greedy,
//     hotzone) and evaluates it against ground truth.
//   - Manager: the live system — route client accesses to the closest
//     replica, summarize them, and migrate at epoch boundaries.
//
// Everything is deterministic given explicit seeds, uses only the
// standard library, and runs at full paper scale (226 nodes, 30 runs) in
// seconds.
package georep

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/latency"
	"github.com/georep/georep/internal/placement"
	"github.com/georep/georep/internal/vec"
)

// Coordinate is a network coordinate: a point in a low-dimensional
// Euclidean space plus a non-negative height modelling access-link delay.
// The predicted RTT between two nodes is the Euclidean distance between
// their positions plus both heights, in milliseconds.
type Coordinate struct {
	Pos    []float64
	Height float64
}

// DistanceTo predicts the RTT in milliseconds to another coordinate.
func (c Coordinate) DistanceTo(o Coordinate) float64 {
	return toInternal(c).DistanceTo(toInternal(o))
}

func toInternal(c Coordinate) coord.Coordinate {
	return coord.Coordinate{Pos: vec.Vec(c.Pos), Height: c.Height}
}

func fromInternal(c coord.Coordinate) Coordinate {
	return Coordinate{Pos: append([]float64(nil), c.Pos...), Height: c.Height}
}

// options collects deployment construction settings. err carries the
// first option-parse failure so construction can report it instead of a
// generic validation error.
type options struct {
	algorithm   coord.Algorithm
	dims        int
	rounds      int
	noiseFrac   float64
	nodes       int
	parallelism int
	err         error
}

func defaultOptions() options {
	return options{
		algorithm: coord.AlgorithmRNP,
		dims:      3,
		rounds:    250,
		noiseFrac: 0.08,
		nodes:     226,
	}
}

// Option configures Simulate and Load.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithCoordinateAlgorithm selects the embedding algorithm: "rnp" (the
// paper's, default) or "vivaldi". An unknown name surfaces as an error
// from the constructor (Simulate, Load, LoadKing) naming the bad input.
func WithCoordinateAlgorithm(name string) Option {
	return optionFunc(func(o *options) {
		a, err := coord.ParseAlgorithm(name)
		if err != nil {
			if o.err == nil {
				o.err = fmt.Errorf("georep: coordinate algorithm: %w", err)
			}
			return
		}
		o.algorithm = a
	})
}

// WithDimensions sets the coordinate-space dimensionality (default 3).
func WithDimensions(d int) Option {
	return optionFunc(func(o *options) { o.dims = d })
}

// WithEmbeddingRounds sets how many gossip rounds the embedding runs
// (default 250).
func WithEmbeddingRounds(r int) Option {
	return optionFunc(func(o *options) { o.rounds = r })
}

// WithMeasurementNoise sets the relative RTT measurement noise during
// embedding (default 0.08).
func WithMeasurementNoise(frac float64) Option {
	return optionFunc(func(o *options) { o.noiseFrac = frac })
}

// WithNodes sets the simulated testbed size (default 226, the paper's).
// Ignored by Load, which takes the size from the matrix.
func WithNodes(n int) Option {
	return optionFunc(func(o *options) { o.nodes = n })
}

// WithParallelism caps the worker goroutines compute-heavy strategies
// (the exhaustive optimal search, k-means assignment) may use: 0 (the
// default) means GOMAXPROCS, 1 forces serial execution. Results are
// byte-identical at any setting — parallelism only changes wall-clock
// time, never placements.
func WithParallelism(n int) Option {
	return optionFunc(func(o *options) { o.parallelism = n })
}

// Deployment is a fixed set of nodes with ground-truth RTTs and embedded
// network coordinates. It is immutable and safe for concurrent reads.
type Deployment struct {
	matrix      *latency.Matrix
	coords      []coord.Coordinate
	stats       coord.EmbedStats
	parallelism int
}

// Simulate builds a deployment over a synthetic PlanetLab-like RTT matrix
// and embeds coordinates. The same seed and options always produce the
// same deployment.
func Simulate(seed int64, opts ...Option) (*Deployment, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.err != nil {
		return nil, fmt.Errorf("simulate: %w", o.err)
	}
	genCfg := latency.DefaultGenerateConfig()
	genCfg.Nodes = o.nodes
	m, _, err := latency.Generate(rand.New(rand.NewSource(seed)), genCfg)
	if err != nil {
		return nil, fmt.Errorf("georep: simulate: %w", err)
	}
	return embed(m, seed, o)
}

// Load builds a deployment from a measured RTT matrix in the text format
// of cmd/latgen: first line the node count n, then n rows of n
// space-separated millisecond values.
func Load(r io.Reader, seed int64, opts ...Option) (*Deployment, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.err != nil {
		return nil, fmt.Errorf("load: %w", o.err)
	}
	m, err := latency.Read(r)
	if err != nil {
		return nil, fmt.Errorf("georep: load: %w", err)
	}
	return embed(m, seed, o)
}

// LoadKing builds a deployment from a matrix in the "king"/p2psim
// format used by public RTT datasets: whitespace-separated microsecond
// integers, one row per line, negative entries marking failed
// measurements (repaired from row medians).
func LoadKing(r io.Reader, seed int64, opts ...Option) (*Deployment, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.err != nil {
		return nil, fmt.Errorf("load king: %w", o.err)
	}
	m, err := latency.ReadKing(r)
	if err != nil {
		return nil, fmt.Errorf("georep: load king: %w", err)
	}
	return embed(m, seed, o)
}

func embed(m *latency.Matrix, seed int64, o options) (*Deployment, error) {
	emb, st, err := coord.EmbedWithStats(rand.New(rand.NewSource(seed+1)), m, coord.EmbedConfig{
		Algorithm: o.algorithm,
		Dims:      o.dims,
		Rounds:    o.rounds,
		NoiseFrac: o.noiseFrac,
	})
	if err != nil {
		return nil, fmt.Errorf("georep: embed: %w", err)
	}
	return &Deployment{matrix: m, coords: emb.Coords, stats: *st, parallelism: o.parallelism}, nil
}

// EmbeddingStability describes convergence of the deployment's
// coordinate run.
type EmbeddingStability struct {
	// DriftMsPerRound is the mean per-node coordinate movement per round
	// over the final quarter of the embedding — residual oscillation.
	DriftMsPerRound float64
	// MeanErrorEstimate is the nodes' own average confidence (relative
	// error estimate) at the end of the run; lower is more confident.
	MeanErrorEstimate float64
}

// EmbeddingStability reports how settled the coordinate system was when
// the deployment's embedding finished.
func (d *Deployment) EmbeddingStability() EmbeddingStability {
	return EmbeddingStability{
		DriftMsPerRound:   d.stats.DriftMsPerRound,
		MeanErrorEstimate: d.stats.MeanErrorEstimate,
	}
}

// Nodes returns the number of nodes in the deployment.
func (d *Deployment) Nodes() int { return d.matrix.N() }

// RTT returns the ground-truth round-trip time between two nodes in
// milliseconds.
func (d *Deployment) RTT(i, j int) float64 { return d.matrix.RTT(i, j) }

// PredictedRTT returns the coordinate-predicted round-trip time between
// two nodes in milliseconds — what the placement algorithms actually see.
func (d *Deployment) PredictedRTT(i, j int) float64 {
	if i == j {
		return 0
	}
	return d.coords[i].DistanceTo(d.coords[j])
}

// Coordinate returns node i's network coordinate.
func (d *Deployment) Coordinate(i int) Coordinate { return fromInternal(d.coords[i]) }

// Strategy names a placement algorithm.
type Strategy string

// Available placement strategies.
const (
	// StrategyRandom places replicas at uniformly random candidates.
	StrategyRandom Strategy = "random"
	// StrategyOfflineKMeans clusters every client coordinate centrally.
	StrategyOfflineKMeans Strategy = "offline-kmeans"
	// StrategyOnline is the paper's micro-cluster algorithm.
	StrategyOnline Strategy = "online"
	// StrategyOptimal exhaustively searches all placements (ground truth).
	StrategyOptimal Strategy = "optimal"
	// StrategyGreedy adds the best candidate one at a time (Qiu et al.).
	StrategyGreedy Strategy = "greedy"
	// StrategyHotZone places replicas in the most crowded coordinate
	// cells (Szymaniak et al.).
	StrategyHotZone Strategy = "hotzone"
	// StrategyLocalSearch hill-climbs from the online placement by
	// single-replica swaps; much costlier, slightly better.
	StrategyLocalSearch Strategy = "local-search"
)

// Strategies lists every available strategy name.
func Strategies() []Strategy {
	return []Strategy{
		StrategyRandom, StrategyOfflineKMeans, StrategyOnline,
		StrategyOptimal, StrategyGreedy, StrategyHotZone,
		StrategyLocalSearch,
	}
}

// PlaceConfig parameterizes a one-shot placement.
type PlaceConfig struct {
	// K is the number of replicas to place.
	K int
	// Candidates are node indices eligible to host replicas.
	Candidates []int
	// Clients are node indices whose mean access delay is minimized.
	Clients []int
	// MicroClusters is the online strategy's per-replica budget m
	// (default 10). Other strategies ignore it.
	MicroClusters int
	// Seed drives the strategy's randomness.
	Seed int64
}

// Placement is the result of a one-shot placement run.
type Placement struct {
	// Strategy that produced the placement.
	Strategy Strategy
	// Replicas are the chosen data-center node indices.
	Replicas []int
	// MeanDelayMs is the ground-truth mean client access delay.
	MeanDelayMs float64
}

func newStrategy(name Strategy, microClusters, parallelism int) (placement.Strategy, error) {
	switch name {
	case StrategyRandom:
		return placement.Random{}, nil
	case StrategyOfflineKMeans:
		return placement.OfflineKMeans{}, nil
	case StrategyOnline:
		m := microClusters
		if m <= 0 {
			m = 10
		}
		return placement.Online{M: m, Rounds: 2, AccessesPerClient: 1}, nil
	case StrategyOptimal:
		return placement.Optimal{Parallelism: parallelism}, nil
	case StrategyGreedy:
		return placement.Greedy{}, nil
	case StrategyHotZone:
		return placement.HotZone{}, nil
	case StrategyLocalSearch:
		m := microClusters
		if m <= 0 {
			m = 10
		}
		return placement.LocalSearch{
			Base: placement.Online{M: m, Rounds: 2, AccessesPerClient: 1},
		}, nil
	default:
		return nil, fmt.Errorf("georep: unknown strategy %q", name)
	}
}

// Place runs one placement strategy on the deployment and evaluates it
// against ground truth.
func (d *Deployment) Place(name Strategy, cfg PlaceConfig) (*Placement, error) {
	s, err := newStrategy(name, cfg.MicroClusters, d.parallelism)
	if err != nil {
		return nil, err
	}
	in := &placement.Instance{
		NumNodes:   d.matrix.N(),
		RTT:        d.matrix.RTT,
		Coords:     d.coords,
		Candidates: cfg.Candidates,
		Clients:    cfg.Clients,
		K:          cfg.K,
	}
	reps, err := s.Place(rand.New(rand.NewSource(cfg.Seed)), in)
	if err != nil {
		return nil, fmt.Errorf("georep: place %s: %w", name, err)
	}
	return &Placement{
		Strategy:    name,
		Replicas:    reps,
		MeanDelayMs: placement.MeanAccessDelay(in, reps),
	}, nil
}

// EmbeddingAccuracy describes how well the deployment's coordinates
// predict its true RTTs.
type EmbeddingAccuracy struct {
	// MedianAbsMs is the median absolute prediction error over all pairs.
	MedianAbsMs float64
	// P90AbsMs is the 90th-percentile absolute error.
	P90AbsMs float64
	// MedianRel is the median relative error.
	MedianRel float64
	// FracUnder10ms is the fraction of pairs predicted within 10 ms —
	// the accuracy bar the paper states RNP clears for most pairs.
	FracUnder10ms float64
}

// EmbeddingAccuracy evaluates the deployment's coordinates against its
// ground-truth RTT matrix.
func (d *Deployment) EmbeddingAccuracy() (EmbeddingAccuracy, error) {
	emb := &coord.Embedding{Coords: d.coords}
	s, err := coord.EvalError(emb, d.matrix)
	if err != nil {
		return EmbeddingAccuracy{}, fmt.Errorf("georep: accuracy: %w", err)
	}
	return EmbeddingAccuracy{
		MedianAbsMs:   s.MedianAbsMs,
		P90AbsMs:      s.P90AbsMs,
		MedianRel:     s.MedianRel,
		FracUnder10ms: s.FracUnder10ms,
	}, nil
}

// MeanAccessDelay evaluates an arbitrary replica set against ground
// truth: the mean over clients of the RTT to the closest replica.
func (d *Deployment) MeanAccessDelay(clients, replicas []int) (float64, error) {
	if len(replicas) == 0 {
		return 0, fmt.Errorf("georep: no replicas")
	}
	if len(clients) == 0 {
		return 0, fmt.Errorf("georep: no clients")
	}
	n := d.matrix.N()
	for _, x := range append(append([]int(nil), clients...), replicas...) {
		if x < 0 || x >= n {
			return 0, fmt.Errorf("georep: node %d out of range [0,%d)", x, n)
		}
	}
	in := &placement.Instance{
		NumNodes: n,
		RTT:      d.matrix.RTT,
		Coords:   d.coords,
		Clients:  clients,
	}
	return placement.MeanAccessDelay(in, replicas), nil
}

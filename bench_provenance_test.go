package georep_test

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/replica"
)

// BenchmarkProvenanceOverhead measures what decision-provenance capture
// adds to the hot epoch path: a full manager epoch (100 recorded
// accesses plus the collection/decision cycle), with the enabled
// variant also attributing per-DC cost shares, scoring swap
// counterfactuals, and folding the record into the online regret
// estimator — exactly what every capture-enabled epoch does. The
// record's backing arrays are reused across epochs, so after warm-up
// the enabled side must stay within a few percent of disabled;
// scripts/bench_provenance.sh turns that into a gate and records both
// numbers in BENCH_provenance.json.
func BenchmarkProvenanceOverhead(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 20)
	for i := range candidates {
		candidates[i] = i
	}

	epoch := func(b *testing.B, withProv bool) {
		reg := metrics.NewRegistry()
		cfg := replica.Config{K: 3, M: 10, Dims: 3, Metrics: reg}
		if withProv {
			cfg.Provenance = true
			cfg.BurnRate = func() float64 { return 0.25 }
		}
		mgr, err := replica.NewManager(cfg, candidates, w.Coords, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Both variants start from a settled heap: the sub-benchmarks run
		// back to back in one process, and whichever runs second would
		// otherwise inherit the first one's garbage as pure bias.
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := 20; c < 120; c++ {
				if _, err := mgr.Record(w.Coords[c], 1); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := mgr.EndEpoch(rand.New(rand.NewSource(3))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		epoch(b, false)
	})
	b.Run("enabled", func(b *testing.B) {
		epoch(b, true)
	})
}

module github.com/georep/georep

go 1.22

package georep

import (
	"testing"
)

func TestMeanQuorumDelayFacade(t *testing.T) {
	d := smallDeployment(t)
	_, clients := splitNodes(d, 10)
	reps := []int{0, 1, 2}

	q1, err := d.MeanQuorumDelay(clients, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	closest, err := d.MeanAccessDelay(clients, reps)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != closest {
		t.Errorf("quorum-1 (%v) should equal closest-replica delay (%v)", q1, closest)
	}
	q3, err := d.MeanQuorumDelay(clients, reps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q3 < q1 {
		t.Errorf("quorum-3 (%v) cannot beat quorum-1 (%v)", q3, q1)
	}

	if _, err := d.MeanQuorumDelay(clients, reps, 0); err == nil {
		t.Error("r=0 should fail")
	}
	if _, err := d.MeanQuorumDelay(clients, reps, 4); err == nil {
		t.Error("r>len should fail")
	}
	if _, err := d.MeanQuorumDelay(nil, reps, 1); err == nil {
		t.Error("no clients should fail")
	}
	if _, err := d.MeanQuorumDelay(clients, nil, 1); err == nil {
		t.Error("no replicas should fail")
	}
	if _, err := d.MeanQuorumDelay([]int{9999}, reps, 1); err == nil {
		t.Error("out-of-range client should fail")
	}
}

func TestPlaceQuorumOptimalFacade(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 8)
	cfg := PlaceConfig{K: 2, Candidates: candidates, Clients: clients}

	p2, err := d.PlaceQuorumOptimal(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Replicas) != 2 || p2.MeanDelayMs <= 0 {
		t.Errorf("placement = %+v", p2)
	}
	// Ground truth: no other pair beats it under the r=2 objective.
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			alt, err := d.MeanQuorumDelay(clients, []int{candidates[i], candidates[j]}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if alt < p2.MeanDelayMs-1e-9 {
				t.Fatalf("pair (%d,%d) delay %v beats 'optimal' %v",
					candidates[i], candidates[j], alt, p2.MeanDelayMs)
			}
		}
	}
	if _, err := d.PlaceQuorumOptimal(cfg, 0); err == nil {
		t.Error("r=0 should fail")
	}
}

func TestGroupSetLifecycle(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 10)
	gs, err := d.NewGroupSet(ManagerConfig{K: 2, Candidates: candidates})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Groups()) != 0 {
		t.Error("fresh group set should be empty")
	}

	// Two groups with disjoint audiences: the first 20 clients hit
	// "hot", the rest hit "cold".
	for i, c := range clients {
		group := "hot"
		if i >= 20 {
			group = "cold"
		}
		servedBy, rtt, err := gs.RecordAccess(group, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		if servedBy < 0 || rtt < 0 {
			t.Fatalf("access result: %d, %v", servedBy, rtt)
		}
	}
	reports, err := gs.EndEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %v", reports)
	}
	for name, rep := range reports {
		if len(rep.Replicas) != rep.K {
			t.Errorf("group %s: k=%d but %d replicas", name, rep.K, len(rep.Replicas))
		}
		if rep.SummaryBytes <= 0 {
			t.Errorf("group %s: summary bytes not accounted", name)
		}
	}
	if got := gs.Groups(); len(got) != 2 || got[0] != "cold" || got[1] != "hot" {
		t.Errorf("groups = %v", got)
	}
	if _, err := gs.Replicas("hot"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gs.RecordAccess("hot", -1, 1); err == nil {
		t.Error("out-of-range client should fail")
	}
	_ = gs.TotalMigrations() // must not panic; value depends on geometry
}

func TestGroupSetValidation(t *testing.T) {
	d := smallDeployment(t)
	if _, err := d.NewGroupSet(ManagerConfig{K: 0, Candidates: []int{0, 1}}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := d.NewGroupSet(ManagerConfig{K: 1, Candidates: []int{0, 9999}}); err == nil {
		t.Error("out-of-range candidate should fail")
	}
}

package georep

import "testing"

// TestEndEpochWithOutages exercises the public degraded-epoch path: an
// unreachable replica marks the epoch degraded in the report and the
// trace ring, and a below-quorum view never changes the placement.
func TestEndEpochWithOutages(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 6)
	// Quorum 0.6 of 3 replicas requires 2 fresh summaries (the check is
	// fresh >= quorum·k, so 0.6·3 = 1.8 → 2-of-3 passes, 1-of-3 fails).
	m, err := d.NewManager(ManagerConfig{K: 3, Candidates: candidates, Quorum: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	record := func(n int) {
		for i := 0; i < n; i++ {
			if _, _, err := m.RecordAccess(clients[i%len(clients)], 1); err != nil {
				t.Fatal(err)
			}
		}
	}

	record(200)
	rep, err := m.EndEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || !rep.QuorumOK {
		t.Fatalf("healthy epoch reported degraded: %+v", rep)
	}

	// Two of three replicas unreachable: below the 67% quorum.
	record(200)
	before := m.Replicas()
	down := before[:2]
	rep, err = m.EndEpochWithOutages(2, down)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.QuorumOK || rep.Migrated {
		t.Fatalf("below-quorum epoch: %+v", rep)
	}
	if len(rep.MissingSummaries) != 2 {
		t.Errorf("MissingSummaries = %v", rep.MissingSummaries)
	}
	after := m.Replicas()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("placement changed below quorum: %v -> %v", before, after)
		}
	}

	snap := m.Snapshot()
	if snap.Counters["replica_degraded_epochs_total"] != 1 {
		t.Errorf("degraded epochs counter = %d, want 1", snap.Counters["replica_degraded_epochs_total"])
	}
	if snap.Counters["replica_quorum_blocked_migrations_total"] != 1 {
		t.Errorf("quorum-blocked counter = %d", snap.Counters["replica_quorum_blocked_migrations_total"])
	}
	var traced *EpochTrace
	for i := range snap.Epochs {
		if snap.Epochs[i].Degraded {
			traced = &snap.Epochs[i]
		}
	}
	if traced == nil {
		t.Fatal("no degraded epoch in the trace ring")
	}
	if len(traced.MissingSummaries) != 2 {
		t.Errorf("trace MissingSummaries = %v", traced.MissingSummaries)
	}

	// One of three unreachable meets quorum again: the epoch may migrate.
	record(200)
	rep, err = m.EndEpochWithOutages(3, before[:1])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || !rep.QuorumOK {
		t.Fatalf("degraded-but-quorate epoch: %+v", rep)
	}
}

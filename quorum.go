package georep

import (
	"fmt"
	"math/rand"

	"github.com/georep/georep/internal/placement"
	"github.com/georep/georep/internal/replica"
)

// Quorum and grouped-object APIs: the two extensions the paper names in
// §II-A (quorum reads for stronger consistency; object groups treated as
// one virtual object).

// MeanQuorumDelay evaluates a replica set under read quorums: each
// client waits for the r-th fastest replica (it reads r replicas in
// parallel). r=1 is the paper's closest-replica model.
func (d *Deployment) MeanQuorumDelay(clients, replicas []int, r int) (float64, error) {
	if len(replicas) == 0 {
		return 0, fmt.Errorf("georep: no replicas")
	}
	if len(clients) == 0 {
		return 0, fmt.Errorf("georep: no clients")
	}
	if r <= 0 || r > len(replicas) {
		return 0, fmt.Errorf("georep: quorum %d out of [1,%d]", r, len(replicas))
	}
	n := d.matrix.N()
	for _, x := range append(append([]int(nil), clients...), replicas...) {
		if x < 0 || x >= n {
			return 0, fmt.Errorf("georep: node %d out of range [0,%d)", x, n)
		}
	}
	in := &placement.Instance{
		NumNodes: n,
		RTT:      d.matrix.RTT,
		Coords:   d.coords,
		Clients:  clients,
	}
	return placement.MeanQuorumDelay(in, replicas, r), nil
}

// PlaceQuorumOptimal exhaustively finds the placement minimizing the
// mean delay to assemble a read quorum of size r. It is the ground truth
// for quorum-aware placement; the heuristic strategies all optimize the
// r=1 objective.
func (d *Deployment) PlaceQuorumOptimal(cfg PlaceConfig, r int) (*Placement, error) {
	in := &placement.Instance{
		NumNodes:   d.matrix.N(),
		RTT:        d.matrix.RTT,
		Coords:     d.coords,
		Candidates: cfg.Candidates,
		Clients:    cfg.Clients,
		K:          cfg.K,
	}
	s := placement.OptimalQuorum{R: r}
	reps, err := s.Place(nil, in)
	if err != nil {
		return nil, fmt.Errorf("georep: place quorum: %w", err)
	}
	return &Placement{
		Strategy:    Strategy(s.Name()),
		Replicas:    reps,
		MeanDelayMs: placement.MeanQuorumDelay(in, reps, r),
	}, nil
}

// GroupSet manages placement for many object groups over one deployment,
// each group with its own replicas, summaries, and epochs.
type GroupSet struct {
	d     *Deployment
	inner *replica.GroupManager
}

// NewGroupSet creates a grouped manager with the given per-group
// configuration. InitialReplicas in cfg is ignored: every group starts
// at the first K candidates and migrates from there.
func (d *Deployment) NewGroupSet(cfg ManagerConfig) (*GroupSet, error) {
	m := cfg.MicroClusters
	if m <= 0 {
		m = 10
	}
	dims := 0
	if d.matrix.N() > 0 {
		dims = d.coords[0].Pos.Dim()
	}
	for _, c := range cfg.Candidates {
		if c < 0 || c >= d.matrix.N() {
			return nil, fmt.Errorf("georep: candidate %d out of range", c)
		}
	}
	rcfg := replica.Config{
		K:    cfg.K,
		M:    m,
		Dims: dims,
		Migration: replica.MigrationPolicy{
			MinRelativeGain: cfg.MinRelativeGain,
			CostPerByte:     cfg.MigrationCostPerByte,
			GainPerMsAccess: cfg.LatencyValuePerMsAccess,
			ObjectBytes:     cfg.ObjectBytes,
		},
		KPolicy: replica.KPolicy{
			Min:         cfg.MinReplicas,
			Max:         cfg.MaxReplicas,
			GrowAbove:   cfg.GrowAbove,
			ShrinkBelow: cfg.ShrinkBelow,
		},
		DecayFactor:  cfg.DecayFactor,
		WindowEpochs: cfg.WindowEpochs,
	}
	inner, err := replica.NewGroupManager(rcfg, cfg.Candidates, d.coords)
	if err != nil {
		return nil, fmt.Errorf("georep: new group set: %w", err)
	}
	return &GroupSet{d: d, inner: inner}, nil
}

// Groups returns the known group names in sorted order.
func (g *GroupSet) Groups() []string { return g.inner.Groups() }

// Replicas returns (creating the group if needed) a group's placement.
func (g *GroupSet) Replicas(group string) ([]int, error) {
	return g.inner.Replicas(group)
}

// RecordAccess routes one read of the named group from the client node
// and returns the serving replica and its ground-truth RTT.
func (g *GroupSet) RecordAccess(group string, clientNode int, weight float64) (servedBy int, rttMs float64, err error) {
	if clientNode < 0 || clientNode >= g.d.matrix.N() {
		return 0, 0, fmt.Errorf("georep: client node %d out of range", clientNode)
	}
	rep, err := g.inner.Record(group, g.d.coords[clientNode], weight)
	if err != nil {
		return rep, 0, err
	}
	return rep, g.d.matrix.RTT(clientNode, rep), nil
}

// EndEpoch runs every group's coordinator cycle and returns the
// per-group reports.
func (g *GroupSet) EndEpoch(seed int64) (map[string]EpochReport, error) {
	decs, err := g.inner.EndEpoch(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("georep: group epoch: %w", err)
	}
	out := make(map[string]EpochReport, len(decs))
	for name, dec := range decs {
		out[name] = EpochReport{
			Migrated:       dec.Migrate,
			Replicas:       dec.NewReplicas,
			K:              dec.K,
			EstimatedOldMs: dec.EstimatedOldMs,
			EstimatedNewMs: dec.EstimatedNewMs,
			MovedReplicas:  dec.MovedReplicas,
			SummaryBytes:   dec.CollectedBytes,
		}
	}
	return out, nil
}

// TotalMigrations sums adopted migrations across groups.
func (g *GroupSet) TotalMigrations() int { return g.inner.TotalMigrations() }

package georep_test

import (
	"fmt"
	"log"

	"github.com/georep/georep"
)

// ExampleSimulate builds a deterministic synthetic deployment and shows
// basic RTT queries.
func ExampleSimulate() {
	dep, err := georep.Simulate(1, georep.WithNodes(30), georep.WithEmbeddingRounds(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", dep.Nodes())
	fmt.Println("self RTT:", dep.RTT(0, 0))
	fmt.Println("cross RTT positive:", dep.RTT(0, 1) > 0)
	// Output:
	// nodes: 30
	// self RTT: 0
	// cross RTT positive: true
}

// ExampleDeployment_Place runs the paper's online strategy against the
// exhaustive optimum on one deployment.
func ExampleDeployment_Place() {
	dep, err := georep.Simulate(1, georep.WithNodes(40), georep.WithEmbeddingRounds(120))
	if err != nil {
		log.Fatal(err)
	}
	candidates := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var clients []int
	for i := 8; i < dep.Nodes(); i++ {
		clients = append(clients, i)
	}
	cfg := georep.PlaceConfig{K: 2, Candidates: candidates, Clients: clients, Seed: 7}

	online, err := dep.Place(georep.StrategyOnline, cfg)
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := dep.Place(georep.StrategyOptimal, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("online has", len(online.Replicas), "replicas")
	fmt.Println("optimal lower-bounds online:", optimal.MeanDelayMs <= online.MeanDelayMs+1e-9)
	// Output:
	// online has 2 replicas
	// optimal lower-bounds online: true
}

// ExampleDeployment_NewManager shows the live epoch loop: record
// accesses, end the epoch, observe the decision.
func ExampleDeployment_NewManager() {
	dep, err := georep.Simulate(2, georep.WithNodes(30), georep.WithEmbeddingRounds(100))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := dep.NewManager(georep.ManagerConfig{
		K:          2,
		Candidates: []int{0, 1, 2, 3, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	for client := 5; client < dep.Nodes(); client++ {
		if _, _, err := mgr.RecordAccess(client, 1); err != nil {
			log.Fatal(err)
		}
	}
	report, err := mgr.EndEpoch(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replicas after epoch:", len(report.Replicas))
	fmt.Println("summaries collected:", report.SummaryBytes > 0)
	// Output:
	// replicas after epoch: 2
	// summaries collected: true
}

// ExampleDeployment_MeanQuorumDelay contrasts closest-replica reads with
// quorum reads.
func ExampleDeployment_MeanQuorumDelay() {
	dep, err := georep.Simulate(3, georep.WithNodes(30), georep.WithEmbeddingRounds(100))
	if err != nil {
		log.Fatal(err)
	}
	clients := []int{10, 11, 12, 13, 14}
	replicas := []int{0, 1, 2}
	q1, err := dep.MeanQuorumDelay(clients, replicas, 1)
	if err != nil {
		log.Fatal(err)
	}
	q3, err := dep.MeanQuorumDelay(clients, replicas, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("waiting for all replicas is slower:", q3 >= q1)
	// Output:
	// waiting for all replicas is slower: true
}

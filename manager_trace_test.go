package georep

import (
	"strings"
	"testing"

	"github.com/georep/georep/internal/trace"
)

// TestManagerTracing checks the manager's epoch span trees: a healthy
// epoch yields a complete tree (collect per replica, kmeans, decide), a
// below-quorum epoch is pinned as anomalous with its unreachable
// replicas named on errored collect spans.
func TestManagerTracing(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 6)
	m, err := d.NewManager(ManagerConfig{K: 3, Candidates: candidates, Quorum: 0.6, Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := m.TraceRecorder()
	if rec == nil {
		t.Fatal("Tracing enabled but TraceRecorder is nil")
	}
	record := func(n int) {
		for i := 0; i < n; i++ {
			if _, _, err := m.RecordAccess(clients[i%len(clients)], 1); err != nil {
				t.Fatal(err)
			}
		}
	}

	record(200)
	if _, err := m.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces after healthy epoch: %d", len(traces))
	}
	healthy := traces[0]
	if healthy.Anomaly != "" {
		t.Fatalf("healthy epoch pinned anomalous: %q", healthy.Anomaly)
	}
	kinds := map[string]int{}
	for _, s := range healthy.Spans {
		kinds[s.Kind]++
	}
	if kinds[trace.KindEpoch] != 1 || kinds[trace.KindCollect] != 3 ||
		kinds[trace.KindKMeans] != 1 || kinds[trace.KindDecide] != 1 {
		t.Fatalf("healthy epoch span kinds: %v", kinds)
	}

	// Two of three replicas down: below quorum, anomalous trace pinned.
	record(200)
	down := m.Replicas()[:2]
	rep, err := m.EndEpochWithOutages(2, down)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.QuorumOK {
		t.Fatalf("expected below-quorum epoch: %+v", rep)
	}
	anom := rec.Anomalous()
	if len(anom) != 1 {
		t.Fatalf("anomalous traces: %d", len(anom))
	}
	tr := anom[0]
	if tr.Anomaly != "below_quorum" {
		t.Fatalf("anomaly = %q, want below_quorum", tr.Anomaly)
	}
	// The unreachable replicas are named on errored collect spans.
	failed := map[string]bool{}
	for _, s := range tr.Spans {
		if s.Kind == trace.KindCollect && s.Err != "" {
			failed[s.Attrs.Get("replica")] = true
			if !strings.Contains(s.Err, "unreachable") && !strings.Contains(s.Err, "stale") {
				t.Errorf("collect span err %q names no cause", s.Err)
			}
		}
	}
	if len(failed) != 2 {
		t.Fatalf("errored collect spans name replicas %v, want both of %v", failed, down)
	}

	// The tree renders and exports without losing the anomaly.
	var sb strings.Builder
	if err := trace.WriteJSONL(&sb, []trace.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].Spans) != len(tr.Spans) {
		t.Fatalf("JSONL round trip lost spans: %d -> %d", len(tr.Spans), len(back[0].Spans))
	}
	tree := trace.RenderTree(tr)
	if !strings.Contains(tree, "epoch 2") || !strings.Contains(tree, "below_quorum") ||
		!strings.Contains(tree, "unreachable") {
		t.Fatalf("rendered tree:\n%s", tree)
	}
}

// TestManagerTracingDisabled: without the knob, no recorder is allocated
// and epochs run exactly as before.
func TestManagerTracingDisabled(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 6)
	m, err := d.NewManager(ManagerConfig{K: 3, Candidates: candidates})
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceRecorder() != nil {
		t.Fatal("recorder allocated without Tracing")
	}
	for i := 0; i < 50; i++ {
		if _, _, err := m.RecordAccess(clients[i%len(clients)], 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/trace"
	"github.com/georep/georep/internal/transport"
)

// startTracedFleet is startTestFleet with flight recorders enabled, so
// the daemons retain the server-side legs of traced RPCs. It returns
// the nodes too, so tests can kill one.
func startTracedFleet(t *testing.T) (string, []*daemon.Node) {
	t.Helper()
	coords := [][]float64{{0, 0}, {100, 0}, {0, 100}}
	var addrs string
	var nodes []*daemon.Node
	for i, pos := range coords {
		n, err := daemon.NewNode(daemon.Config{
			ID: i, MicroClusters: 6, Dims: 2,
			Coordinate: pos, Height: 1,
			Trace: trace.NewFlightRecorder(trace.DefaultRecent, trace.DefaultAnomalous),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		if i > 0 {
			addrs += ","
		}
		addrs += n.Addr()
		nodes = append(nodes, n)
	}
	return addrs, nodes
}

// TestCtlTracedRebalance kills one node out of three and checks that a
// rebalance still succeeds as a degraded cycle whose exported span tree
// names the dead node, spans multiple processes, and renders in every
// output format.
func TestCtlTracedRebalance(t *testing.T) {
	addrs, nodes := startTracedFleet(t)
	if err := run([]string{"-nodes", addrs, "put", "-obj", "o", "-data", "payload"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		err := run([]string{"-nodes", addrs, "read", "-obj", "o",
			"-client", "9", "-client-coord", "2,98"})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Node 1 dies; the cycle must degrade, not fail.
	deadAddr := splitAddrs(addrs)[1]
	nodes[1].Close()
	out := filepath.Join(t.TempDir(), "rebalance.jsonl")
	err := run([]string{"-nodes", addrs, "rebalance", "-obj", "o", "-k", "1",
		"-trace-out", out})
	if err != nil {
		t.Fatalf("degraded rebalance failed: %v", err)
	}

	traces, err := readTraceFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var cycle *trace.Trace
	for i := range traces {
		for _, s := range traces[i].Spans {
			if s.Name == "rebalance o" {
				cycle = &traces[i]
			}
		}
	}
	if cycle == nil {
		t.Fatalf("no rebalance trace in export: %+v", traces)
	}
	if cycle.Anomaly != "degraded" {
		t.Fatalf("anomaly = %q, want degraded (lost in export?)", cycle.Anomaly)
	}
	nodesSeen := make(map[string]bool)
	var namedDead, sawKMeans bool
	for _, s := range cycle.Spans {
		nodesSeen[s.Node] = true
		if s.Kind == trace.KindCollect && strings.Contains(s.Err, deadAddr) &&
			strings.Contains(s.Err, "unreachable") {
			namedDead = true
		}
		if s.Kind == trace.KindKMeans {
			sawKMeans = true
		}
	}
	if !namedDead {
		t.Errorf("no collect span names dead node %s: %+v", deadAddr, cycle.Spans)
	}
	if !sawKMeans {
		t.Errorf("no kmeans span: %+v", cycle.Spans)
	}
	if len(nodesSeen) < 2 {
		t.Errorf("trace spans only %v, want ctl + daemon legs", nodesSeen)
	}
	if !nodesSeen["ctl"] {
		t.Errorf("no coordinator spans: %v", nodesSeen)
	}

	// Every render path, through the command parser where possible.
	if err := run([]string{"trace", "-in", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"trace", "-in", out, "-o", "chrome", "-anomalous"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"trace", "-in", out, "-o", "jsonl", "-trace-id", cycle.TraceID}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"spans", "-in", out, "-kind", "collect", "-top", "3"}); err != nil {
		t.Fatal(err)
	}

	var tree strings.Builder
	if err := writeTraces(&tree, traces, "tree", "", true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rebalance o", "degraded", "unreachable", deadAddr} {
		if !strings.Contains(tree.String(), want) {
			t.Errorf("rendered tree missing %q:\n%s", want, tree.String())
		}
	}

	var table strings.Builder
	if err := topSpans(&table, traces, "collect", 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "collect") || !strings.Contains(table.String(), "ERR:") {
		t.Errorf("spans table missing collect rows or error:\n%s", table.String())
	}
}

// TestCtlTraceFromFleet drives a traced rebalance, then fetches the
// daemons' retained spans over the trace RPC via the trace and spans
// subcommands.
func TestCtlTraceFromFleet(t *testing.T) {
	addrs, _ := startTracedFleet(t)
	if err := run([]string{"-nodes", addrs, "put", "-obj", "f", "-data", "x"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		err := run([]string{"-nodes", addrs, "read", "-obj", "f",
			"-client", "3", "-client-coord", "1,1"})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{"-nodes", addrs, "rebalance", "-obj", "f", "-k", "1"}); err != nil {
		t.Fatal(err)
	}

	f, err := dialFleet(splitAddrs(addrs), time.Second,
		transport.WithClientTracer(trace.New(trace.NewFlightRecorder(4, 4), "ctl")))
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	traces, err := f.gatherTraces()
	if err != nil {
		t.Fatal(err)
	}
	var sawServe bool
	for _, tr := range traces {
		for _, s := range tr.Spans {
			if s.Name == "serve.micros" && strings.HasPrefix(s.Node, "node") {
				sawServe = true
			}
		}
	}
	if !sawServe {
		t.Fatalf("daemons retained no serve.micros span from the traced rebalance: %+v", traces)
	}

	// End-to-end through the parser.
	if err := run([]string{"-nodes", addrs, "trace"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-nodes", addrs, "spans", "-kind", "server"}); err != nil {
		t.Fatal(err)
	}
}

func TestCtlTraceErrors(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.jsonl")
	if err := run([]string{"trace", "-in", missing}); err == nil {
		t.Error("missing trace file should fail")
	}
	good := filepath.Join(dir, "t.jsonl")
	spans := `{"trace_id":"t1","span_id":"s1","name":"epoch","kind":"epoch","start_ns":1,"dur_ns":2}` + "\n"
	if err := os.WriteFile(good, []byte(spans), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"trace", "-in", good, "-o", "bogus"}); err == nil {
		t.Error("unknown -o format should fail")
	}
	if err := run([]string{"spans", "-in", good, "-top", "0"}); err == nil {
		t.Error("-top 0 should fail")
	}
	// Filters that match nothing succeed with a notice, not an error.
	if err := run([]string{"trace", "-in", good, "-trace-id", "absent"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"spans", "-in", good, "-kind", "migrate"}); err != nil {
		t.Fatal(err)
	}
}

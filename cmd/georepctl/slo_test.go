package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/georep/georep/internal/daemon"
)

func startSLONode(t *testing.T) string {
	t.Helper()
	n, err := daemon.NewNode(daemon.Config{
		ID: 0, MicroClusters: 4, Dims: 2, Coordinate: []float64{0, 0}, Height: 1,
		SLOSpec:     "avail ratio(daemon_rpc_errors_total / daemon_rpc_total) <= 0.01",
		SLOInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n.Addr()
}

// TestCtlSLODashboard renders the slo command against a live node and
// checks the dashboard carries the objective row, thresholds, and a
// sparkline; the metrics table gains the budget/burn section too.
func TestCtlSLODashboard(t *testing.T) {
	addr := startSLONode(t)
	f, err := dialFleet(strings.Split(addr, ","), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()

	if _, err := f.members[0].client.Stats(); err != nil { // some traffic
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // a few sampler ticks

	var buf bytes.Buffer
	if err := f.slo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"avail", "ok", "budget", "page at"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("dashboard has no sparkline:\n%s", out)
	}

	buf.Reset()
	if err := f.metrics(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "slo") || !strings.Contains(out, "burnF") {
		t.Errorf("metrics table missing SLO section:\n%s", out)
	}

	// watch mode reuses the restart-resilient loop: two frames render.
	buf.Reset()
	if err := f.watch(&buf, "slo", 100*time.Millisecond, 2, f.slo); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\033[H\033[2J"); got != 2 {
		t.Fatalf("want 2 watch frames, got %d:\n%q", got, buf.String())
	}
}

// TestCtlSLOWithoutEngine: a fleet with no -slo node fails the command
// with advice rather than rendering an empty dashboard.
func TestCtlSLOWithoutEngine(t *testing.T) {
	nodes := startTestFleet(t)
	f, err := dialFleet(strings.Split(nodes, ","), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	var buf bytes.Buffer
	err = f.slo(&buf)
	if err == nil || !strings.Contains(err.Error(), "-slo") {
		t.Fatalf("want advice error, got %v\n%s", err, buf.String())
	}
}

// TestSparkline pins the renderer: scaling to max, NaN gaps, all-zero.
func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 0.5, 1}); got != "▁▄█" {
		t.Errorf("sparkline scale = %q", got)
	}
	if got := sparkline([]float64{math.NaN(), 1}); got != " █" {
		t.Errorf("sparkline NaN = %q", got)
	}
	if got := sparkline([]float64{0, 0}); got != "▁▁" {
		t.Errorf("sparkline zeros = %q", got)
	}
	if got := sparkline(nil); got != "" {
		t.Errorf("sparkline nil = %q", got)
	}
}

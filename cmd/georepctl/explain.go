package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/georep/georep/internal/explain"
	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/transport"
)

// explainLocal explains decisions from a local ledger directory: the
// attribution table and counterfactual ranking for one epoch (-epoch,
// default latest recorded), optionally narrowed to one object (-obj).
// With interval > 0 it re-reads and re-renders top-style until
// interrupted; iterations caps frames for tests (<= 0 = forever).
func explainLocal(w io.Writer, dir string, epoch int, objectID, format string, interval time.Duration, iterations int) error {
	if dir == "" {
		return fmt.Errorf("explain needs -dir (local ledger) or -nodes (fleet)")
	}
	render := func(fw io.Writer) error {
		recs, err := ledger.ReadDir(dir)
		if err != nil {
			return err
		}
		rep, err := explain.Build(recs, explain.Options{Epoch: epoch, ObjectID: objectID})
		if err != nil {
			return err
		}
		return writeExplain(fw, rep, format)
	}
	if interval <= 0 {
		return render(w)
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	for i := 0; ; i++ {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return err
		}
		fmt.Fprintf(w, "\033[H\033[2Jgeorepctl explain  (every %s, ctrl-c to stop)\n%s", interval, buf.String())
		if iterations > 0 && i+1 >= iterations {
			return nil
		}
		time.Sleep(interval)
	}
}

// explain fetches decision-provenance explanations from the fleet.
// Nodes running without a ledger directory answer with an application
// error and are reported and skipped; if no node serves explanations
// the command fails.
func (f *fleet) explain(w io.Writer, epoch int, objectID, format string) error {
	served := 0
	for _, m := range f.members {
		raw, err := m.client.Explain(epoch, objectID)
		if err != nil {
			if transport.IsRetryable(err) {
				return err
			}
			fmt.Fprintf(w, "node %d (%s): no decision ledger\n", m.node, m.addr)
			continue
		}
		served++
		fmt.Fprintf(w, "node %d (%s)\n", m.node, m.addr)
		var rep explain.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("decode explain from node %d (%s): %w", m.node, m.addr, err)
		}
		if err := writeExplain(w, &rep, format); err != nil {
			return err
		}
	}
	if served == 0 {
		return fmt.Errorf("no node serves explanations (start georepd with -ledger-dir)")
	}
	return nil
}

// writeExplain renders one explain report in the requested format.
func writeExplain(w io.Writer, rep *explain.Report, format string) error {
	switch format {
	case "json":
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", body)
		return err
	case "tree", "table": // "tree" is the flag default; treat it as table
		explain.Render(w, rep)
		return nil
	default:
		return fmt.Errorf("unknown explain format %q (want table or json)", format)
	}
}

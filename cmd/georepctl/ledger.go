package main

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/georep/georep/internal/audit"
	"github.com/georep/georep/internal/ledger"
)

// ledgerCmd inspects, verifies, or exports a local epoch ledger. It
// needs no fleet: the ledger directory is the one a georepd, kvcluster
// coordinator, or replicasim -ledger-out run wrote.
func ledgerCmd(w io.Writer, dir string, verify bool, limit int, format string) error {
	if dir == "" {
		return fmt.Errorf("ledger needs -dir (the ledger directory)")
	}
	if verify {
		return verifyLedger(w, dir)
	}
	recs, err := ledger.ReadDir(dir)
	if err != nil {
		return err
	}
	if limit > 0 && len(recs) > limit {
		recs = recs[len(recs)-limit:]
	}
	switch format {
	case "jsonl":
		return ledger.WriteJSONL(w, recs)
	case "tree", "table": // "tree" is the flag default; treat it as table
		renderRecords(w, recs)
		return nil
	default:
		return fmt.Errorf("unknown ledger format %q (want table or jsonl)", format)
	}
}

// verifyLedger CRC-checks every segment and fails on any unrecoverable
// bytes, so `georepctl ledger -verify -dir X` is a real integrity gate.
func verifyLedger(w io.Writer, dir string) error {
	v, err := ledger.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s%10s%12s%10s  %s\n", "segment", "records", "bytes", "dropped", "epochs")
	for _, s := range v.Segments {
		line := fmt.Sprintf("%-10d%10d%12d%10d  %d-%d", s.Index, s.Records, s.Bytes, s.DroppedBytes, s.FirstEpoch, s.LastEpoch)
		if s.Corrupt != "" {
			line += "  CORRUPT: " + s.Corrupt
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "total: %d records, %d bytes, epochs %d-%d\n", v.Records, v.Bytes, v.FirstEpoch, v.LastEpoch)
	if !v.Clean {
		return fmt.Errorf("ledger has %d unrecoverable bytes (recovery would keep %d records)", v.DroppedBytes, v.Records)
	}
	fmt.Fprintln(w, "clean: every record CRC-checked and decoded")
	return nil
}

// renderRecords prints a one-line-per-epoch decision table.
func renderRecords(w io.Writer, recs []ledger.Record) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "ledger is empty")
		return
	}
	fmt.Fprintf(w, "%-8s%4s%10s%10s%10s%10s%9s%8s%8s  %s\n",
		"epoch", "k", "est old", "est new", "observed", "accesses", "migrate", "moved", "flags", "replicas")
	for i := range recs {
		r := &recs[i]
		flags := ""
		if r.Degraded {
			flags += "D"
		}
		if !r.QuorumOK {
			flags += "Q"
		}
		if flags == "" {
			flags = "-"
		}
		fmt.Fprintf(w, "%-8d%4d%10.1f%10.1f%10.1f%10d%9v%8d%8s  %v\n",
			r.Epoch, r.K, r.EstimatedOldMs, r.EstimatedNewMs, r.ObservedMeanMs,
			r.Accesses, r.Migrate, r.MovedReplicas, flags, r.Replicas)
	}
}

// auditCmd replays a local ledger through the offline baselines and
// prints the regret report (the paper's online-vs-k-means-vs-optimal
// comparison, recomputed from decision provenance).
func auditCmd(w io.Writer, dir string, cfg audit.Config, format string, why bool) error {
	if dir == "" {
		return fmt.Errorf("audit needs -dir (the ledger directory)")
	}
	recs, err := ledger.ReadDir(dir)
	if err != nil {
		return err
	}
	rep, err := audit.Run(recs, cfg)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", body)
		return err
	case "tree", "table":
		renderAudit(w, rep, cfg, why)
		return nil
	default:
		return fmt.Errorf("unknown audit format %q (want table or json)", format)
	}
}

func renderAudit(w io.Writer, rep *audit.Report, cfg audit.Config, why bool) {
	if rep.AuditedEpochs == 0 {
		fmt.Fprintf(w, "nothing to audit (%d records skipped)\n", rep.SkippedEpochs)
		return
	}
	title := "Audit: online vs offline k-means vs optimal (estimated mean delay, ms)"
	if cfg.WhatIfK > 0 {
		title = fmt.Sprintf("Audit what-if: baselines replayed at k=%d", cfg.WhatIfK)
	}
	fmt.Fprintln(w, title)
	multi := false
	for _, row := range rep.Epochs {
		if row.ObjectID != "" {
			multi = true
			break
		}
	}
	why = why && auditHasReasons(rep)
	whyHead, whyCols := "", ""
	if why {
		whyHead = fmt.Sprintf("  %-14s%12s%4s", "reason", "live-regret", "cf")
	}
	if multi {
		fmt.Fprintf(w, "%-8s%-14s%4s%10s%10s%10s%10s%12s%12s%9s%9s%6s  %-6s%s\n",
			"epoch", "object", "k", "online", "kmeans", "optimal", "observed",
			"regret-km", "regret-opt", "drift", "quality", "disp", "flags", whyHead)
	} else {
		fmt.Fprintf(w, "%-8s%4s%10s%10s%10s%10s%12s%12s%9s%9s%6s  %-6s%s\n",
			"epoch", "k", "online", "kmeans", "optimal", "observed",
			"regret-km", "regret-opt", "drift", "quality", "disp", "flags", whyHead)
	}
	for _, row := range rep.Epochs {
		opt, regOpt := fmt.Sprintf("%10.1f", row.OptimalEstMs), fmt.Sprintf("%12.3f", row.RegretOptimalMs)
		if row.OptimalSkipped {
			opt, regOpt = fmt.Sprintf("%10s", "-"), fmt.Sprintf("%12s", "-")
		}
		flags := ""
		if row.Migrated {
			flags += "M"
		}
		if row.Held {
			flags += "H"
		}
		if row.Degraded {
			flags += "D"
		}
		if !row.QuorumOK {
			flags += "Q"
		}
		if flags == "" {
			flags = "-"
		}
		if why {
			reason := row.Reason
			if reason == "" {
				reason = "-"
			}
			whyCols = fmt.Sprintf("  %-14s%12.3f%4d", reason, row.ProvRegretMs, row.ProvCounterfactuals)
		}
		if multi {
			fmt.Fprintf(w, "%-8d%-14s%4d%10.1f%10.1f%s%10.1f%12.3f%s%9.2f%9.2f%6d  %-6s%s\n",
				row.Epoch, row.ObjectID, row.K, row.OnlineEstMs, row.KMeansEstMs, opt, row.ObservedMs,
				row.RegretKMeansMs, regOpt, row.DriftMs, row.QualityMs, row.Displaced, flags, whyCols)
		} else {
			fmt.Fprintf(w, "%-8d%4d%10.1f%10.1f%s%10.1f%12.3f%s%9.2f%9.2f%6d  %-6s%s\n",
				row.Epoch, row.K, row.OnlineEstMs, row.KMeansEstMs, opt, row.ObservedMs,
				row.RegretKMeansMs, regOpt, row.DriftMs, row.QualityMs, row.Displaced, flags, whyCols)
		}
	}
	if why {
		renderWhy(w, rep)
	}
	if len(rep.Classes) > 1 || (len(rep.Classes) == 1 && rep.Classes[0].Class != "") {
		fmt.Fprintln(w, "per-class regret:")
		fmt.Fprintf(w, "  %-14s%8s%8s%12s%12s%10s\n",
			"class", "objects", "epochs", "regret-km", "regret-opt", "displaced")
		for _, c := range rep.Classes {
			name := c.Class
			if name == "" {
				name = "(none)"
			}
			regOpt := fmt.Sprintf("%12.3f", c.MeanRegretOptimalMs)
			if c.OptimalEpochs == 0 {
				regOpt = fmt.Sprintf("%12s", "-")
			}
			fmt.Fprintf(w, "  %-14s%8d%8d%12.3f%s%10d\n",
				name, c.Objects, c.Epochs, c.MeanRegretKMeansMs, regOpt, c.Displaced)
		}
	}
	fmt.Fprintf(w, "epochs: %d audited, %d skipped, %d with exhaustive optimal, %d migrations\n",
		rep.AuditedEpochs, rep.SkippedEpochs, rep.OptimalEpochs, rep.Migrations)
	fmt.Fprintf(w, "mean: online %.1f ms, kmeans %.1f ms, optimal %.1f ms, observed %.1f ms\n",
		rep.MeanOnlineEstMs, rep.MeanKMeansEstMs, rep.MeanOptimalEstMs, rep.MeanObservedMs)
	fmt.Fprintf(w, "regret: vs kmeans mean %.3f ms (max %.3f), vs optimal mean %.3f ms (max %.3f)\n",
		rep.MeanRegretKMeansMs, rep.MaxRegretKMeansMs, rep.MeanRegretOptimalMs, rep.MaxRegretOptimalMs)
	fmt.Fprintf(w, "health: drift mean %.2f ms, micro-cluster quality mean %.2f ms\n",
		rep.MeanDriftMs, rep.MeanQualityMs)
	if rep.Displaced > 0 {
		fmt.Fprintf(w, "capacity: %d replicas displaced across audited epochs\n", rep.Displaced)
	}
}

// auditHasReasons reports whether any audited epoch carries recorded
// decision provenance; -why on a pre-v3 ledger degrades to the plain
// table instead of printing a column of dashes.
func auditHasReasons(rep *audit.Report) bool {
	for _, row := range rep.Epochs {
		if row.Reason != "" {
			return true
		}
	}
	return false
}

// renderWhy prints the -why aggregate: for each recorded decision
// reason, how often it fired and how the manager's own live regret (vs
// the counterfactuals it scored in the moment) compares with the
// audit's offline hindsight regret (vs a k-means replay of the same
// summaries). A reason whose live regret is low but offline regret is
// high marks epochs where the online solver was confidently wrong.
func renderWhy(w io.Writer, rep *audit.Report) {
	type agg struct {
		epochs  int
		held    int
		liveSum float64
		kmSum   float64
		cfSum   int
	}
	byReason := map[string]*agg{}
	var order []string
	for _, row := range rep.Epochs {
		if row.Reason == "" {
			continue
		}
		a := byReason[row.Reason]
		if a == nil {
			a = &agg{}
			byReason[row.Reason] = a
			order = append(order, row.Reason)
		}
		a.epochs++
		if row.Held {
			a.held++
		}
		a.liveSum += row.ProvRegretMs
		a.kmSum += row.RegretKMeansMs
		a.cfSum += row.ProvCounterfactuals
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintln(w, "why (recorded reason vs hindsight regret):")
	fmt.Fprintf(w, "  %-14s%8s%6s%14s%14s%10s\n",
		"reason", "epochs", "held", "live-regret", "regret-km", "mean-cf")
	for _, name := range order {
		a := byReason[name]
		n := float64(a.epochs)
		fmt.Fprintf(w, "  %-14s%8d%6d%14.3f%14.3f%10.1f\n",
			name, a.epochs, a.held, a.liveSum/n, a.kmSum/n, float64(a.cfSum)/n)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/georep/georep/internal/audit"
	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/experiment"
	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/vec"
)

// writeTestLedger fills dir with epochs structurally valid, auditable
// decision records and returns the directory.
func writeTestLedger(t *testing.T, epochs int) string {
	t.Helper()
	dir := t.TempDir()
	l, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= epochs; e++ {
		if err := l.Append(ctlTestRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// ctlTestRecord is an auditable record whose demand cloud drifts with
// the epoch, so regret, drift and quality are all non-trivial.
func ctlTestRecord(e int) ledger.Record {
	cands := []int{0, 1, 2, 3, 4}
	coords := make([]coord.Coordinate, len(cands))
	for i := range coords {
		coords[i] = coord.Coordinate{Pos: vec.Vec{float64(12 * i), float64(3 * i)}, Height: 1}
	}
	m1 := cluster.NewMicro(2)
	m1.Absorb(vec.Vec{float64(4 * e), 2}, 3)
	m1.Absorb(vec.Vec{float64(4*e) + 2, 4}, 2)
	m2 := cluster.NewMicro(2)
	m2.Absorb(vec.Vec{40, float64(10 - e)}, 4)
	return ledger.Record{
		Epoch:           e,
		K:               2,
		Candidates:      cands,
		CandidateCoords: coords,
		PrevReplicas:    []int{0, 1},
		Replicas:        []int{0, 1},
		Proposed:        []int{0, 1},
		MovedReplicas:   0,
		EstimatedOldMs:  25,
		EstimatedNewMs:  25,
		ObservedMeanMs:  24 + float64(e),
		Accesses:        100,
		CollectedBytes:  256,
		QuorumOK:        true,
		Micros:          []cluster.Micro{m1, m2},
	}
}

func TestLedgerCmdInspect(t *testing.T) {
	dir := writeTestLedger(t, 5)
	var buf bytes.Buffer
	if err := ledgerCmd(&buf, dir, false, 0, "table"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"epoch", "observed", "[0 1]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 6 { // header + 5 records
		t.Fatalf("want 6 lines, got %d:\n%s", got, out)
	}

	// -limit keeps only the newest records.
	buf.Reset()
	if err := ledgerCmd(&buf, dir, false, 2, "table"); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); strings.Contains(out, "\n1 ") || strings.Count(out, "\n") != 3 {
		t.Fatalf("limit 2 should show the last 2 records:\n%s", out)
	}
}

func TestLedgerCmdExportJSONL(t *testing.T) {
	dir := writeTestLedger(t, 3)
	var a, b bytes.Buffer
	if err := ledgerCmd(&a, dir, false, 0, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if err := ledgerCmd(&b, dir, false, 0, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("jsonl export is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSONL lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"Epoch":1`) {
		t.Fatalf("first line should be epoch 1: %s", lines[0])
	}
}

func TestLedgerCmdVerify(t *testing.T) {
	dir := writeTestLedger(t, 4)
	var buf bytes.Buffer
	if err := ledgerCmd(&buf, dir, true, 0, "table"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "clean") {
		t.Fatalf("verify of intact ledger should report clean:\n%s", buf.String())
	}

	// Corrupt one byte mid-segment: verify must fail loudly.
	segs, err := filepath.Glob(filepath.Join(dir, "ledger-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ledgerCmd(&buf, dir, true, 0, "table"); err == nil {
		t.Fatalf("verify of corrupted ledger should fail:\n%s", buf.String())
	}
}

func TestLedgerCmdNeedsDir(t *testing.T) {
	// ledger/audit are local commands: they must not demand -nodes, and
	// they must demand -dir.
	if err := run([]string{"ledger"}); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("want -dir error, got %v", err)
	}
	if err := run([]string{"audit"}); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("want -dir error, got %v", err)
	}
}

func TestLedgerAndAuditViaRun(t *testing.T) {
	dir := writeTestLedger(t, 3)
	for _, args := range [][]string{
		{"ledger", "-dir", dir},
		{"-dir", dir, "ledger", "-verify"}, // flags before the command too
		{"ledger", "-dir", dir, "-o", "jsonl", "-limit", "1"},
		{"audit", "-dir", dir},
		{"audit", "-dir", dir, "-o", "json", "-what-if", "3"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestAuditCmdTable(t *testing.T) {
	dir := writeTestLedger(t, 5)
	var buf bytes.Buffer
	if err := auditCmd(&buf, dir, audit.Config{Seed: 1}, "table", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"regret-opt", "epochs: 5 audited", "mean:", "health:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit table missing %q:\n%s", want, out)
		}
	}

	// A what-if replay is labelled as such.
	buf.Reset()
	if err := auditCmd(&buf, dir, audit.Config{Seed: 1, WhatIfK: 3}, "table", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "what-if: baselines replayed at k=3") {
		t.Fatalf("what-if audit not labelled:\n%s", buf.String())
	}
}

// TestAuditEndToEndDeterministic is the acceptance check: a seeded
// simulation writes a real ledger; auditing it twice produces
// byte-identical JSON reports.
func TestAuditEndToEndDeterministic(t *testing.T) {
	dir := t.TempDir()
	l, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiment.DefaultDriftConfig()
	cfg.Setup.Nodes = 40
	cfg.NumDCs = 8
	cfg.K = 2
	cfg.M = 4
	cfg.Epochs = 5
	cfg.AccessesPerEpoch = 300
	cfg.Ledger = l
	if _, err := experiment.Drift(1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	acfg := audit.Config{Seed: 1}
	if err := auditCmd(&a, dir, acfg, "json", false); err != nil {
		t.Fatal(err)
	}
	if err := auditCmd(&b, dir, acfg, "json", false); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || a.String() != b.String() {
		t.Fatal("audit JSON of a seeded run is not byte-deterministic")
	}
	if !strings.Contains(a.String(), `"RegretOptimalMs"`) {
		t.Fatalf("audit JSON missing regret columns:\n%s", a.String())
	}

	// The simulated run also drives the online path end to end: the
	// ledger must carry observed (simulated) delays, and the audit
	// regret-vs-optimal must be non-negative on every epoch.
	rep, err := auditReport(dir, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AuditedEpochs != 5 {
		t.Fatalf("want 5 audited epochs, got %d", rep.AuditedEpochs)
	}
	for _, row := range rep.Epochs {
		if row.ObservedMs <= 0 || row.Accesses <= 0 {
			t.Fatalf("epoch %d missing observed delay: %+v", row.Epoch, row)
		}
		if !row.OptimalSkipped && row.RegretOptimalMs < 0 {
			t.Fatalf("epoch %d negative optimal regret: %+v", row.Epoch, row)
		}
	}
}

// auditReport mirrors auditCmd's read-then-run without rendering.
func auditReport(dir string, cfg audit.Config) (*audit.Report, error) {
	recs, err := ledger.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	return audit.Run(recs, cfg)
}

func TestMetricsWatch(t *testing.T) {
	nodes := startTestFleet(t)
	f, err := dialFleet(strings.Split(nodes, ","), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	var buf bytes.Buffer
	if err := f.metricsWatch(&buf, "daemon_rpc", 100*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "\033[H\033[2J"); got != 2 {
		t.Fatalf("want 2 screen-clearing frames, got %d:\n%q", got, out)
	}
	if !strings.Contains(out, "node 0") || !strings.Contains(out, "daemon_rpc") {
		t.Fatalf("watch frames missing metrics table:\n%s", out)
	}
}

func TestMetricsWatchFlag(t *testing.T) {
	nodes := startTestFleet(t)
	// One-shot sanity that the -watch flag parses and terminates is not
	// possible through run (it loops forever), so check the plain path
	// still works alongside the new flag set.
	if err := run([]string{"-nodes", nodes, "metrics", "-metric", "daemon_rpc"}); err != nil {
		t.Fatal(err)
	}
}

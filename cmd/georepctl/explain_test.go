package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"github.com/georep/georep/internal/audit"
	"github.com/georep/georep/internal/experiment"
	"github.com/georep/georep/internal/explain"
	"github.com/georep/georep/internal/ledger"
)

// The committed seeded ledger under testdata/explain_seed is the
// acceptance artifact for `georepctl explain`: the decision ledger of
// one pinned failure-experiment run (fault plan, SLO hold and all), so
// the CLI tests and the docs walkthrough explain the exact same run.
// Regenerate with
//
//	GOLDEN_REGEN=1 go test ./cmd/georepctl -run TestExplainSeedRegenerate
//
// only when the capture pipeline intentionally changes what it records.
const (
	explainSeedDir = "testdata/explain_seed"
	explainSeed    = 1
)

func seededExplainConfig() experiment.FailureConfig {
	cfg := experiment.DefaultFailureConfig()
	cfg.Setup.Nodes = 60
	cfg.NumDCs = 12
	cfg.K = 3
	cfg.M = 6
	cfg.Epochs = 9
	cfg.AccessesPerEpoch = 400
	// A permissive gain gate lets the post-fault demand shift propose
	// migrations; with the availability budget burned through, the SLO
	// hold refuses them, so the committed run records held-budget
	// decisions with their scored counterfactuals.
	cfg.MinRelativeGain = 0.01
	return cfg
}

// writeSeededLedger runs the pinned failure experiment, durably logging
// the faulty pass's decisions into dir.
func writeSeededLedger(t *testing.T, dir string) {
	t.Helper()
	l, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := seededExplainConfig()
	cfg.Ledger = l
	if _, err := experiment.Failure(explainSeed, cfg); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExplainSeedRegenerate(t *testing.T) {
	if os.Getenv("GOLDEN_REGEN") == "" {
		t.Skip("set GOLDEN_REGEN=1 to rewrite the seeded explain ledger")
	}
	if err := os.RemoveAll(explainSeedDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(explainSeedDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSeededLedger(t, explainSeedDir)
}

// faultedProvEpoch picks the committed run's acceptance epoch: inside
// the fault window, non-steady, with at least three scored
// counterfactuals. The seeded scenario must produce one — if a capture
// change loses it, this fails rather than silently asserting less.
func faultedProvEpoch(t *testing.T) int {
	t.Helper()
	recs, err := ledger.ReadDir(explainSeedDir)
	if err != nil {
		t.Fatal(err)
	}
	// Ledger epochs are 1-based; the fault plan starts at experiment
	// epoch Epochs/3 (0-based), i.e. ledger epoch Epochs/3 + 1.
	faultFrom := seededExplainConfig().Epochs/3 + 1
	for _, r := range recs {
		if r.Epoch < faultFrom || r.Prov == nil {
			continue
		}
		if r.Prov.Reason.String() != "steady" && len(r.Prov.Counterfactuals) >= 3 {
			return r.Epoch
		}
	}
	t.Fatalf("seeded run has no faulted epoch with a non-steady reason and >= 3 counterfactuals")
	return -1
}

// TestExplainSeededLedger is the CLI acceptance check: explaining a
// faulted epoch of the committed run surfaces a non-steady reason, its
// gating inputs, and at least three scored counterfactuals — and the
// rendering is byte-deterministic.
func TestExplainSeededLedger(t *testing.T) {
	epoch := faultedProvEpoch(t)
	var a, b bytes.Buffer
	if err := explainLocal(&a, explainSeedDir, epoch, "", "tree", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := explainLocal(&b, explainSeedDir, epoch, "", "tree", 0, 0); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || a.String() != b.String() {
		t.Fatal("explain output is not byte-deterministic")
	}
	out := a.String()
	if strings.Contains(out, "reason steady") || !strings.Contains(out, "reason ") {
		t.Fatalf("faulted epoch should explain a non-steady reason:\n%s", out)
	}
	if !strings.Contains(out, "gates") || !strings.Contains(out, "burn ") {
		t.Fatalf("explain output missing gating inputs:\n%s", out)
	}
	m := regexp.MustCompile(`counterfactuals \((\d+) scored`).FindStringSubmatch(out)
	if m == nil || m[1] == "0" || m[1] == "1" || m[1] == "2" {
		t.Fatalf("want >= 3 scored counterfactuals, got %v:\n%s", m, out)
	}

	// Default epoch resolution (-1) finds the latest provenance-bearing
	// epoch without being told which one.
	var c bytes.Buffer
	if err := explainLocal(&c, explainSeedDir, -1, "", "tree", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "reason ") {
		t.Fatalf("latest-epoch explain carries no provenance:\n%s", c.String())
	}

	// JSON mode exports the same report machine-readably.
	var j bytes.Buffer
	if err := explainLocal(&j, explainSeedDir, epoch, "", "json", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `"reason"`) || !strings.Contains(j.String(), `"counterfactuals"`) {
		t.Fatalf("explain JSON missing provenance fields:\n%s", j.String())
	}
}

// TestExplainSeededLedgerDeterministic pins byte-level reproducibility
// across parallelism: regenerating the seeded run at GOMAXPROCS=1 and
// at full width must reproduce the committed segments bit for bit.
func TestExplainSeededLedgerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the seeded experiment twice")
	}
	want := readSegments(t, explainSeedDir)
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		dir := t.TempDir()
		writeSeededLedger(t, dir)
		runtime.GOMAXPROCS(prev)
		got := readSegments(t, dir)
		if len(got) != len(want) {
			t.Fatalf("GOMAXPROCS=%d: %d segments, committed run has %d", procs, len(got), len(want))
		}
		for name, data := range want {
			if !bytes.Equal(got[name], data) {
				t.Fatalf("GOMAXPROCS=%d: segment %s differs from committed bytes", procs, name)
			}
		}
	}
}

// readSegments returns segment basename -> raw bytes for a ledger dir.
func readSegments(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "ledger-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatalf("no segments in %s", dir)
	}
	out := make(map[string][]byte, len(segs))
	for _, s := range segs {
		raw, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(s)] = raw
	}
	return out
}

// TestExplainWatch exercises the top-style loop: two frames, each
// clearing the screen and re-rendering the report.
func TestExplainWatch(t *testing.T) {
	var buf bytes.Buffer
	if err := explainLocal(&buf, explainSeedDir, -1, "", "tree", 100, 2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\033[H\033[2J"); got != 2 {
		t.Fatalf("want 2 screen-clearing frames, got %d", got)
	}
}

func TestExplainViaRun(t *testing.T) {
	if err := run([]string{"explain", "-dir", explainSeedDir}); err != nil {
		t.Fatal(err)
	}
	// Without -dir, explain is a fleet command and demands -nodes.
	if err := run([]string{"explain"}); err == nil || !strings.Contains(err.Error(), "-nodes") {
		t.Fatalf("explain without a source should fail with a hint, got %v", err)
	}
}

// TestAuditCmdWhy checks -why: the seeded v3 ledger gets reason and
// live-regret columns plus the per-reason aggregate; a pre-v3 ledger
// degrades to the plain table instead of printing dash-only columns.
func TestAuditCmdWhy(t *testing.T) {
	var buf bytes.Buffer
	if err := auditCmd(&buf, explainSeedDir, audit.Config{Seed: 1}, "table", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reason", "live-regret", "why (recorded reason vs hindsight regret):"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit -why missing %q:\n%s", want, out)
		}
	}

	old := writeTestLedger(t, 4) // pre-v3 records: no provenance anywhere
	buf.Reset()
	if err := auditCmd(&buf, old, audit.Config{Seed: 1}, "table", true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "live-regret") {
		t.Fatalf("-why on a pre-v3 ledger should fall back to the plain table:\n%s", buf.String())
	}
}

// TestExplainReportJSONRoundTrip pins the fleet path's wire contract:
// the daemon marshals an explain.Report, the CLI unmarshals and renders
// it identically to the local path.
func TestExplainReportJSONRoundTrip(t *testing.T) {
	recs, err := ledger.ReadDir(explainSeedDir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explain.Build(recs, explain.Options{Epoch: -1})
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := writeExplain(&direct, rep, "json"); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := writeExplain(&again, rep, "json"); err != nil {
		t.Fatal(err)
	}
	if direct.String() != again.String() {
		t.Fatal("explain JSON not deterministic")
	}
}

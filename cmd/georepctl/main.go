// Command georepctl is the coordinator CLI for a fleet of georepd
// storage nodes: inspect the fleet, read and write objects, and run one
// cycle of the paper's Algorithm 1 — collect micro-cluster summaries,
// weighted-k-means them, and migrate an object toward its users.
//
// Usage:
//
//	georepctl -nodes host1:port,host2:port status
//	georepctl -nodes ... put   -obj key -data "payload" [-version 2]
//	georepctl -nodes ... get   -obj key
//	georepctl -nodes ... read  -obj key -client 7 -client-coord "10,-3,42"
//	georepctl -nodes ... rebalance -obj key -k 2 [-min-gain 0.05] [-apply] [-trace-out t.jsonl]
//	georepctl -nodes ... decay -factor 0.5
//	georepctl -nodes ... metrics [-metric daemon_rpc] [-watch 2s]
//	georepctl -nodes ... slo [-watch 2s]
//	georepctl -nodes ... trace [-anomalous] [-trace-id id] [-o tree|chrome|jsonl]
//	georepctl -nodes ... spans [-kind collect] [-top 10]
//	georepctl trace -in run.jsonl                # render an exported trace file
//	georepctl ledger -dir ./epochs [-limit 20] [-verify] [-o table|jsonl]
//	georepctl audit  -dir ./epochs [-what-if 3] [-audit-seed 1] [-why] [-o table|json]
//	georepctl explain -dir ./epochs [-epoch 5] [-obj key] [-watch 2s] [-o table|json]
//	georepctl -nodes ... explain [-epoch 5] [-obj key]   # same report over the explain RPC
//
// read acts as a client at the given coordinate: it fetches the object
// from the predicted-closest holder, which records the access in that
// node's micro-cluster summary — the signal rebalance feeds on.
//
// Rebalance prints the proposed placement and its estimated improvement;
// with -apply it executes the migration via put/delete RPCs and ages the
// summaries. Nodes must have been started with -coord so the coordinator
// knows where they sit in latency space. Every rebalance cycle is traced
// as one span tree — collect per holder, k-means, decision, migration —
// and unreachable holders degrade the cycle (named on an errored collect
// span, the trace pinned anomalous) instead of failing it; -trace-out
// merges the coordinator's spans with the daemons' server-side legs into
// a JSONL file that `georepctl trace -in` or about://tracing renders.
//
// slo renders each node's live SLO dashboard — per objective: state,
// error-budget remaining, fast/slow burn rates, and a sparkline of the
// recent bad-event fraction — and with -watch re-renders it top-style
// using the same restart-resilient loop as metrics -watch. Nodes must
// run with -slo. The plain metrics table also appends an SLO section
// whenever a node serves one, so a metrics -watch shows budget and burn
// columns alongside the raw series.
//
// trace fetches the span trees retained by the daemons' flight
// recorders (or reads an exported JSONL file with -in) and renders them
// as indented trees, Chrome trace_event JSON, or raw JSONL. spans ranks
// the slowest spans by duration, optionally filtered by kind.
//
// ledger and audit are local commands — they read an epoch-decision
// ledger directory (written by a manager configured with a ledger, or
// replicasim -ledger-out) and need no -nodes. ledger inspects, verifies
// (full CRC walk, failing on unrecoverable bytes) or exports the raw
// decision records; audit replays every epoch through the offline
// k-means and exhaustive-optimal baselines and reports placement regret,
// demand drift, and micro-cluster quality — the paper's online-vs-
// offline comparison recomputed from decision provenance. With -why the
// audit joins each epoch's recorded outcome reason and live regret
// (ledger codec v3) against those hindsight baselines, and the summary
// counts held migrations and capacity displacements.
//
// explain renders one epoch's decision provenance — outcome reason with
// its gating inputs, cost decomposition with per-DC shares, the scored
// counterfactual placements ranked cheapest-first, and the regret line.
// With -dir it reads a local ledger like audit; with -nodes it asks a
// ledger-configured daemon over the explain RPC. -epoch selects an
// epoch (-1 = latest), -obj filters to one object, -watch follows the
// live ledger top-style.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/georep/georep/internal/audit"
	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/store"
	"github.com/georep/georep/internal/trace"
	"github.com/georep/georep/internal/transport"
	"github.com/georep/georep/internal/vec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "georepctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("georepctl", flag.ContinueOnError)
	var (
		nodesFlag   = fs.String("nodes", "", "comma-separated daemon addresses")
		obj         = fs.String("obj", "", "object id")
		data        = fs.String("data", "", "object payload for put")
		version     = fs.Uint64("version", 1, "object version for put")
		k           = fs.Int("k", 2, "replication degree for rebalance")
		clientID    = fs.Int("client", -1, "client node id for read")
		clientPos   = fs.String("client-coord", "", "client coordinate for read, comma-separated floats")
		decayFactor = fs.Float64("factor", 0.5, "summary aging factor for decay")
		minGain     = fs.Float64("min-gain", 0.05, "minimum relative estimated gain to apply a rebalance")
		apply       = fs.Bool("apply", false, "execute the rebalance instead of printing the plan")
		parallelism = fs.Int("parallelism", 0, "worker goroutines for rebalance clustering (0 = all cores, 1 = serial; same plan either way)")
		timeout     = fs.Duration("timeout", 3*time.Second, "dial timeout per node")
		callTimeout = fs.Duration("call-timeout", 0, "per-RPC deadline (0 = transport default)")
		retries     = fs.Int("retries", 0, "max attempts per idempotent RPC with exponential backoff (0 = no retries)")
		metricFilt  = fs.String("metric", "", "substring filter for metrics names (metrics command)")
		traceIn     = fs.String("in", "", "trace/spans: read span trees from a JSONL file instead of the fleet")
		traceFmt    = fs.String("o", "tree", "output format: trace tree|chrome|jsonl, ledger table|jsonl, audit table|json")
		traceID     = fs.String("trace-id", "", "trace: show only this trace id")
		anomOnly    = fs.Bool("anomalous", false, "trace: show only anomalous traces")
		topN        = fs.Int("top", 10, "spans: how many of the slowest spans to list")
		kindFilt    = fs.String("kind", "", "spans: keep only spans of this kind (epoch, collect, kmeans, decide, migrate, client, attempt, server, failover)")
		traceOut    = fs.String("trace-out", "", "rebalance: export the cycle's span tree, merged with the daemons' server-side legs, as JSONL to this file")
		watchEvery  = fs.Duration("watch", 0, "metrics: clear the screen and re-render every interval until interrupted (0 = print once)")
		ledgerDir   = fs.String("dir", "", "ledger/audit: local ledger directory (as written by a ledger-configured manager or replicasim -ledger-out)")
		verifyFlag  = fs.Bool("verify", false, "ledger: CRC-check every segment and fail if any bytes are unrecoverable")
		limit       = fs.Int("limit", 0, "ledger: show only the last N records (0 = all)")
		whatIfK     = fs.Int("what-if", 0, "audit: replay the offline baselines at this replication degree instead of each epoch's logged k")
		auditSeed   = fs.Int64("audit-seed", 1, "audit: seed for the offline k-means baseline")
		maxLeaves   = fs.Int("max-leaves", 0, "audit: skip the exhaustive optimal baseline when the search would exceed this many leaves (0 = default, negative = never skip)")
		epochFlag   = fs.Int("epoch", -1, "explain: epoch to explain (-1 = latest recorded)")
		whyFlag     = fs.Bool("why", false, "audit: join recorded decision reasons and live regret (codec v3 provenance) with the offline baselines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// flag stops at the first positional argument, so accept flags both
	// before and after the command: extract the command, then parse the
	// rest as flags too.
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("need a command: status, get, put, read, rebalance, decay, metrics, slo, explain, trace, spans, ledger, audit")
	}
	cmd := rest[0]
	if err := fs.Parse(rest[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	// trace and spans can work entirely from an exported file.
	fromFile := *traceIn != "" && (cmd == "trace" || cmd == "spans")
	if fromFile {
		traces, err := readTraceFile(*traceIn)
		if err != nil {
			return err
		}
		if cmd == "trace" {
			return writeTraces(os.Stdout, traces, *traceFmt, *traceID, *anomOnly)
		}
		return topSpans(os.Stdout, traces, *kindFilt, *topN)
	}
	// ledger and audit work entirely from a local ledger directory.
	switch cmd {
	case "ledger":
		return ledgerCmd(os.Stdout, *ledgerDir, *verifyFlag, *limit, *traceFmt)
	case "audit":
		return auditCmd(os.Stdout, *ledgerDir, audit.Config{
			Seed:             *auditSeed,
			WhatIfK:          *whatIfK,
			MaxOptimalLeaves: *maxLeaves,
			Parallelism:      *parallelism,
		}, *traceFmt, *whyFlag)
	case "explain":
		// Local when a ledger directory is given; otherwise the fleet's
		// explain RPC below.
		if *ledgerDir != "" {
			return explainLocal(os.Stdout, *ledgerDir, *epochFlag, *obj, *traceFmt, *watchEvery, 0)
		}
	}
	if *nodesFlag == "" {
		return fmt.Errorf("-nodes is required")
	}

	// The coordinator records its own side of every traced cycle; the
	// clients are dialed with the tracer so RPC legs land in the same
	// trees. Untraced commands record nothing.
	rec := trace.NewFlightRecorder(trace.DefaultRecent, trace.DefaultAnomalous)
	tracer := trace.New(rec, "ctl")

	opts := []transport.ClientOption{transport.WithClientTracer(tracer)}
	if *callTimeout > 0 {
		opts = append(opts, transport.WithCallTimeout(*callTimeout))
	}
	if *retries > 1 {
		p := transport.DefaultRetryPolicy()
		p.MaxAttempts = *retries
		opts = append(opts, transport.WithRetryPolicy(p))
	}

	fleet, err := dialFleet(strings.Split(*nodesFlag, ","), *timeout, opts...)
	if err != nil {
		return err
	}
	defer fleet.close()
	fleet.tracer, fleet.rec = tracer, rec

	switch cmd {
	case "status":
		return fleet.status()
	case "get":
		if *obj == "" {
			return fmt.Errorf("get needs -obj")
		}
		return fleet.get(*obj)
	case "put":
		if *obj == "" {
			return fmt.Errorf("put needs -obj")
		}
		return fleet.put(*obj, []byte(*data), *version)
	case "read":
		if *obj == "" {
			return fmt.Errorf("read needs -obj")
		}
		pos, err := parseFloats(*clientPos)
		if err != nil {
			return err
		}
		return fleet.read(*obj, *clientID, pos)
	case "rebalance":
		if *obj == "" {
			return fmt.Errorf("rebalance needs -obj")
		}
		return fleet.rebalance(*obj, *k, *minGain, *apply, *parallelism, *traceOut)
	case "decay":
		if *decayFactor <= 0 || *decayFactor > 1 {
			return fmt.Errorf("decay needs -factor in (0,1]")
		}
		return fleet.decay(*decayFactor)
	case "metrics":
		if *watchEvery > 0 {
			return fleet.metricsWatch(os.Stdout, *metricFilt, *watchEvery, 0)
		}
		return fleet.metrics(os.Stdout, *metricFilt)
	case "slo":
		if *watchEvery > 0 {
			return fleet.watch(os.Stdout, "slo", *watchEvery, 0, fleet.slo)
		}
		return fleet.slo(os.Stdout)
	case "explain":
		render := func(fw io.Writer) error {
			return fleet.explain(fw, *epochFlag, *obj, *traceFmt)
		}
		if *watchEvery > 0 {
			return fleet.watch(os.Stdout, "explain", *watchEvery, 0, render)
		}
		return render(os.Stdout)
	case "trace":
		traces, err := fleet.gatherTraces()
		if err != nil {
			return err
		}
		return writeTraces(os.Stdout, traces, *traceFmt, *traceID, *anomOnly)
	case "spans":
		traces, err := fleet.gatherTraces()
		if err != nil {
			return err
		}
		return topSpans(os.Stdout, traces, *kindFilt, *topN)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// member is one daemon the coordinator talks to.
type member struct {
	addr   string
	client *daemon.Client
	node   int
	coord  coord.Coordinate
}

type fleet struct {
	members []*member
	byNode  map[int]*member
	// down records addresses that could not be dialed or identified, so
	// a traced rebalance can name them instead of silently shrinking the
	// fleet.
	down   map[string]error
	tracer *trace.Tracer
	rec    *trace.FlightRecorder
}

// dialFleet connects to every reachable daemon. Nodes that cannot be
// dialed or that stall the identifying coord call are skipped with a
// warning rather than failing the fleet — a coordinator that dies
// because one node is down would be useless exactly when it matters.
func dialFleet(addrs []string, timeout time.Duration, opts ...transport.ClientOption) (*fleet, error) {
	f := &fleet{byNode: make(map[int]*member), down: make(map[string]error)}
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c, err := daemon.DialNode(addr, timeout, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "georepctl: skipping unreachable node %s: %v\n", addr, err)
			f.down[addr] = err
			continue
		}
		cr, err := c.Coord()
		if err != nil {
			fmt.Fprintf(os.Stderr, "georepctl: skipping unreachable node %s: %v\n", addr, err)
			f.down[addr] = err
			c.Close()
			continue
		}
		m := &member{
			addr:   addr,
			client: c,
			node:   cr.Node,
			coord:  coord.Coordinate{Pos: vec.Vec(cr.Pos), Height: cr.Height},
		}
		if dup, ok := f.byNode[m.node]; ok {
			f.close()
			return nil, fmt.Errorf("nodes %s and %s both report id %d", dup.addr, addr, m.node)
		}
		f.members = append(f.members, m)
		f.byNode[m.node] = m
	}
	if len(f.members) == 0 {
		return nil, fmt.Errorf("no reachable nodes")
	}
	return f, nil
}

func (f *fleet) close() {
	for _, m := range f.members {
		m.client.Close()
	}
}

func (f *fleet) status() error {
	fmt.Printf("%-6s%-24s%10s%12s%12s%10s  %s\n",
		"node", "addr", "objects", "bytes", "accesses", "ping", "coordinate")
	for _, m := range f.members {
		st, err := m.client.Stats()
		if err != nil {
			return err
		}
		rtt, err := m.client.Ping()
		if err != nil {
			return err
		}
		coordStr := "unknown"
		if len(m.coord.Pos) > 0 {
			coordStr = fmt.Sprintf("%.1f (h=%.1f)", []float64(m.coord.Pos), m.coord.Height)
		}
		fmt.Printf("%-6d%-24s%10d%12d%12d%10s  %s\n",
			m.node, m.addr, st.Objects, st.Bytes, st.Accesses,
			rtt.Round(time.Microsecond), coordStr)
	}
	return nil
}

func (f *fleet) get(obj string) error {
	for _, m := range f.members {
		resp, rtt, err := m.client.Get(-1, nil, obj)
		if err != nil {
			continue // not on this node
		}
		fmt.Printf("node %d (%s) v%d %dB in %s\n%s\n",
			m.node, m.addr, resp.Version, len(resp.Data), rtt.Round(time.Microsecond), resp.Data)
		return nil
	}
	return fmt.Errorf("object %q not found on any node", obj)
}

func (f *fleet) put(obj string, data []byte, version uint64) error {
	for _, m := range f.members {
		if err := m.client.Put(obj, data, version); err != nil {
			return err
		}
		fmt.Printf("stored %q v%d at node %d (%s)\n", obj, version, m.node, m.addr)
	}
	return nil
}

// read acts as a client: it finds the holders of the object, picks the
// one with the lowest predicted RTT from the client coordinate, and
// issues a summarized read there.
func (f *fleet) read(obj string, clientID int, clientPos []float64) error {
	holders, err := f.holders(obj)
	if err != nil {
		return err
	}
	if len(holders) == 0 {
		return fmt.Errorf("object %q not found on any node", obj)
	}
	best := holders[0]
	if len(clientPos) > 0 {
		clientCoord := coord.Coordinate{Pos: vec.Vec(clientPos)}
		bestD := clientCoord.DistanceTo(best.coord)
		for _, m := range holders[1:] {
			if len(m.coord.Pos) == 0 {
				continue
			}
			if d := clientCoord.DistanceTo(m.coord); d < bestD {
				best, bestD = m, d
			}
		}
	}
	resp, rtt, err := best.client.Get(clientID, clientPos, obj)
	if err != nil {
		return err
	}
	fmt.Printf("read %q v%d (%dB) from node %d in %s\n",
		obj, resp.Version, len(resp.Data), best.node, rtt.Round(time.Microsecond))
	return nil
}

// metrics fetches and pretty-prints every node's metrics snapshot.
// filter, when non-empty, keeps only metric names containing it.
func (f *fleet) metrics(w io.Writer, filter string) error {
	keep := func(name string) bool {
		return filter == "" || strings.Contains(name, filter)
	}
	for _, m := range f.members {
		s, err := m.client.Metrics()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "node %d (%s)\n", m.node, m.addr)
		for _, name := range metrics.SortedNames(s.Counters) {
			if keep(name) {
				fmt.Fprintf(w, "  %-44s %12d\n", name, s.Counters[name])
			}
		}
		for _, name := range metrics.SortedNames(s.Gauges) {
			if keep(name) {
				fmt.Fprintf(w, "  %-44s %12.3f\n", name, s.Gauges[name])
			}
		}
		for _, name := range metrics.SortedNames(s.Histograms) {
			if !keep(name) {
				continue
			}
			h := s.Histograms[name]
			fmt.Fprintf(w, "  %-44s n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
				name, h.Count, h.Mean(), h.P50, h.P95, h.P99, h.Max)
		}
		// Nodes running with -slo get a budget/burn section under the raw
		// series; nodes without one just skip it (the RPC errors).
		if st, err := m.client.SLO(); err == nil {
			fmt.Fprintf(w, "  slo%42s %8s %7s %7s\n", "state", "budget", "burnF", "burnS")
			for _, o := range st.Objectives {
				fmt.Fprintf(w, "    %-41s %5s %7.1f%% %6.1fx %6.1fx\n",
					o.Name, o.State, o.BudgetRemaining*100, o.BurnFastShort, o.BurnSlowShort)
			}
		}
	}
	return nil
}

// slo renders each node's live SLO dashboard. Nodes answering the slo
// RPC with an application error (engine disabled) are reported and
// skipped; if no node serves SLOs the command fails.
func (f *fleet) slo(w io.Writer) error {
	served := 0
	for _, m := range f.members {
		st, err := m.client.SLO()
		if err != nil {
			if transport.IsRetryable(err) {
				return err
			}
			fmt.Fprintf(w, "node %d (%s): no slo engine\n", m.node, m.addr)
			continue
		}
		served++
		fmt.Fprintf(w, "node %d (%s)  spec: %s\n", m.node, m.addr, st.Spec)
		fmt.Fprintf(w, "  page at %.1fx burn on %s+%s, warn at %.1fx on %s+%s\n",
			st.PageBurn, st.Windows["fast_short"], st.Windows["fast_long"],
			st.WarnBurn, st.Windows["slow_short"], st.Windows["slow_long"])
		for _, o := range st.Objectives {
			fmt.Fprintf(w, "  %-28s %-4s  budget %6.1f%%  burn %5.1fx %5.1fx %5.1fx %5.1fx  %s\n",
				o.Name, o.State, o.BudgetRemaining*100,
				o.BurnFastShort, o.BurnFastLong, o.BurnSlowShort, o.BurnSlowLong,
				sparkline(o.Spark))
			for _, ex := range o.Exemplars {
				fmt.Fprintf(w, "      exemplar %.3f trace %s\n", ex.Value, ex.TraceID)
			}
		}
	}
	if served == 0 {
		return fmt.Errorf("no node serves SLOs (start georepd with -slo)")
	}
	return nil
}

// sparkBars is the 8-level block alphabet sparklines draw with.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as unicode bars scaled to their own max;
// NaN (no data yet) renders as a space.
func sparkline(vals []float64) string {
	var max float64
	for _, v := range vals {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	out := make([]rune, 0, len(vals))
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			out = append(out, ' ')
		case max == 0:
			out = append(out, sparkBars[0])
		default:
			i := int(v / max * float64(len(sparkBars)-1))
			out = append(out, sparkBars[i])
		}
	}
	return string(out)
}

// metricsWatchMaxFailures is how many consecutive unreachable frames a
// metrics watch rides out before giving up: enough to span a daemon
// restart, small enough that a permanently dead fleet still surfaces.
const metricsWatchMaxFailures = 8

// watch re-renders one fleet view every interval,
// clearing the terminal between frames (top-style), until interrupted.
// Each frame is rendered to a buffer first so a partially fetched frame
// never tears the screen. A transport-level failure — a daemon
// restarting looks like a dead connection — does not end the watch:
// the frame is skipped with a backoff notice and the next attempt
// redials, giving up only after metricsWatchMaxFailures consecutive
// misses. Application errors still fail fast. iterations caps the
// number of frames (successful or skipped) for tests; <= 0 runs forever.
func (f *fleet) watch(w io.Writer, title string, interval time.Duration, iterations int, render func(io.Writer) error) error {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	policy := transport.DefaultRetryPolicy()
	failures := 0
	for i := 0; ; i++ {
		var buf bytes.Buffer
		wait := interval
		switch err := render(&buf); {
		case err == nil:
			failures = 0
			fmt.Fprintf(w, "\033[H\033[2Jgeorepctl %s  (every %s, ctrl-c to stop)\n%s", title, interval, buf.String())
		case transport.IsRetryable(err):
			failures++
			if failures >= metricsWatchMaxFailures {
				return fmt.Errorf("%s watch: giving up after %d consecutive failures: %w", title, failures, err)
			}
			if backoff := policy.Backoff(failures, nil); backoff > wait {
				wait = backoff
			}
			fmt.Fprintf(w, "metrics watch: fleet unreachable (%v); retrying in %s (%d/%d)\n",
				err, wait.Round(time.Millisecond), failures, metricsWatchMaxFailures-1)
		default:
			return err
		}
		if iterations > 0 && i+1 >= iterations {
			return nil
		}
		time.Sleep(wait)
	}
}

// metricsWatch is the metrics-table view of the generic watch loop.
func (f *fleet) metricsWatch(w io.Writer, filter string, interval time.Duration, iterations int) error {
	return f.watch(w, "metrics", interval, iterations, func(fw io.Writer) error {
		return f.metrics(fw, filter)
	})
}

// decay ages every node's summary — an operator's manual epoch boundary.
func (f *fleet) decay(factor float64) error {
	for _, m := range f.members {
		if err := m.client.Decay(factor); err != nil {
			return err
		}
		fmt.Printf("aged summaries at node %d by %.2f\n", m.node, factor)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate component %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// gatherTraces fetches every reachable node's retained span trees and
// merges them by trace id, so a tree whose spans are scattered across
// daemons reassembles. Nodes running without a flight recorder
// contribute nothing.
func (f *fleet) gatherTraces() ([]trace.Trace, error) {
	sets := make([][]trace.Trace, 0, len(f.members))
	for _, m := range f.members {
		ts, err := m.client.Trace()
		if err != nil {
			return nil, fmt.Errorf("traces from node %d (%s): %w", m.node, m.addr, err)
		}
		sets = append(sets, ts)
	}
	return trace.Merge(sets...), nil
}

// readTraceFile loads span trees from a JSONL export.
func readTraceFile(path string) ([]trace.Trace, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return trace.ReadJSONL(fh)
}

// writeTraces renders traces in the requested format, optionally
// narrowed to one trace id or to anomalous traces only.
func writeTraces(w io.Writer, traces []trace.Trace, format, id string, anomOnly bool) error {
	var kept []trace.Trace
	for _, t := range traces {
		if id != "" && t.TraceID != id {
			continue
		}
		if anomOnly && t.Anomaly == "" {
			continue
		}
		kept = append(kept, t)
	}
	if len(kept) == 0 {
		fmt.Fprintln(w, "no matching traces")
		return nil
	}
	switch format {
	case "tree":
		for _, t := range kept {
			fmt.Fprint(w, trace.RenderTree(t))
		}
		return nil
	case "chrome":
		return trace.WriteChromeTrace(w, kept)
	case "jsonl":
		return trace.WriteJSONL(w, kept)
	default:
		return fmt.Errorf("unknown trace format %q (want tree, chrome or jsonl)", format)
	}
}

// topSpans lists the slowest spans across all traces, optionally
// filtered by kind.
func topSpans(w io.Writer, traces []trace.Trace, kind string, n int) error {
	if n <= 0 {
		return fmt.Errorf("spans needs -top > 0")
	}
	var spans []trace.Span
	for _, t := range traces {
		for _, s := range t.Spans {
			if kind == "" || s.Kind == kind {
				spans = append(spans, s)
			}
		}
	}
	if len(spans) == 0 {
		fmt.Fprintln(w, "no matching spans")
		return nil
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].DurNs > spans[j].DurNs })
	if len(spans) > n {
		spans = spans[:n]
	}
	fmt.Fprintf(w, "%-12s%-24s%-10s%12s  %s\n", "kind", "name", "node", "ms", "trace")
	for _, s := range spans {
		line := fmt.Sprintf("%-12s%-24s%-10s%12.3f  %s", s.Kind, s.Name, s.Node, float64(s.DurNs)/1e6, s.TraceID)
		if s.Err != "" {
			line += "  ERR: " + s.Err
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// holders returns the members currently storing the object.
func (f *fleet) holders(obj string) ([]*member, error) {
	var out []*member
	for _, m := range f.members {
		objs, err := m.client.List()
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			if o == obj {
				out = append(out, m)
				break
			}
		}
	}
	return out, nil
}

func (f *fleet) rebalance(obj string, k int, minGain float64, apply bool, parallelism int, traceOut string) error {
	if k <= 0 || k > len(f.members) {
		return fmt.Errorf("k=%d out of [1,%d]", k, len(f.members))
	}
	for _, m := range f.members {
		if len(m.coord.Pos) == 0 {
			return fmt.Errorf("node %d (%s) has no coordinate; start georepd with -coord", m.node, m.addr)
		}
	}
	holders, err := f.holders(obj)
	if err != nil {
		return err
	}
	if len(holders) == 0 {
		return fmt.Errorf("object %q not found on any node", obj)
	}

	// One rebalance cycle is one span tree, mirroring the manager's
	// epoch span model: collect per holder, kmeans, decide, migrate.
	root := f.tracer.StartRoot("rebalance "+obj, trace.KindEpoch)
	defer root.End()
	root.SetAttr("object", obj)
	root.SetAttr("k", strconv.Itoa(k))

	// Collect summaries from the current holders. An unreachable holder
	// degrades the cycle — named on its errored collect span, the cycle
	// pinned anomalous — rather than failing it.
	var micros []cluster.Micro
	var summaryBytes int
	var current, missing []int
	for _, m := range holders {
		sp := f.tracer.Start(root.Context(), fmt.Sprintf("collect %d", m.node), trace.KindCollect)
		sp.SetAttr("replica", strconv.Itoa(m.node))
		ctx := trace.ContextWithSpan(context.Background(), sp)
		current = append(current, m.node)
		ms, n, err := m.client.MicrosCtx(ctx)
		if err != nil {
			sp.SetErrString(fmt.Sprintf("holder %d (%s) unreachable: %v", m.node, m.addr, err))
			sp.End()
			fmt.Fprintf(os.Stderr, "georepctl: no summary from node %d (%s): %v\n", m.node, m.addr, err)
			missing = append(missing, m.node)
			continue
		}
		sp.SetAttr("bytes", strconv.Itoa(n))
		sp.End()
		micros = append(micros, ms...)
		summaryBytes += n
	}
	// Nodes that never made it into the fleet still get named: they may
	// hold a replica we cannot see, so the cycle is degraded either way.
	downAddrs := make([]string, 0, len(f.down))
	for addr := range f.down {
		downAddrs = append(downAddrs, addr)
	}
	sort.Strings(downAddrs)
	for _, addr := range downAddrs {
		sp := f.tracer.Start(root.Context(), "collect "+addr, trace.KindCollect)
		sp.SetErrString(fmt.Sprintf("node at %s unreachable: %v", addr, f.down[addr]))
		sp.End()
	}
	if len(missing) > 0 {
		root.SetAttr("missing", fmt.Sprint(missing))
	}
	if len(missing) > 0 || len(downAddrs) > 0 {
		root.MarkAnomalous("degraded")
	}
	if len(micros) == 0 {
		err := fmt.Errorf("no access summaries reachable; let clients read %q first or retry", obj)
		root.SetErr(err)
		return err
	}

	// Dense coordinate table indexed by node id.
	maxNode := 0
	for _, m := range f.members {
		if m.node > maxNode {
			maxNode = m.node
		}
	}
	coords := make([]coord.Coordinate, maxNode+1)
	var candidates []int
	for _, m := range f.members {
		coords[m.node] = m.coord
		candidates = append(candidates, m.node)
	}

	ksp := f.tracer.Start(root.Context(), "kmeans", trace.KindKMeans)
	ksp.SetAttr("micros", strconv.Itoa(len(micros)))
	proposed, err := replica.ProposePlacementOpt(rand.New(rand.NewSource(time.Now().UnixNano())),
		micros, k, candidates, coords, cluster.Options{Parallelism: parallelism})
	if err != nil {
		ksp.SetErr(err)
		ksp.End()
		root.SetErr(err)
		return err
	}
	ksp.End()
	dsp := f.tracer.Start(root.Context(), "decide", trace.KindDecide)
	oldEst, err := replica.EstimateMeanDelay(micros, current, coords)
	if err == nil {
		var newEst float64
		newEst, err = replica.EstimateMeanDelay(micros, proposed, coords)
		if err == nil {
			gain := 0.0
			if oldEst > 0 {
				gain = (oldEst - newEst) / oldEst
			}
			dsp.SetAttr("gain_ms", fmt.Sprintf("%.3f", oldEst-newEst))
			dsp.End()
			err = f.applyRebalance(obj, root, holders, current, proposed,
				oldEst, newEst, gain, minGain, apply, summaryBytes)
		}
	}
	if err != nil {
		dsp.SetErr(err)
		dsp.End()
		root.SetErr(err)
		return err
	}
	if traceOut != "" {
		root.End()
		if err := f.exportTrace(traceOut); err != nil {
			return err
		}
	}
	return nil
}

// applyRebalance prints the proposal and, with apply, executes the
// migration under a migrate span.
func (f *fleet) applyRebalance(obj string, root *trace.ActiveSpan, holders []*member,
	current, proposed []int, oldEst, newEst, gain, minGain float64, apply bool, summaryBytes int) error {
	fmt.Printf("object %q: current %v (est %.1f ms) → proposed %v (est %.1f ms), gain %.1f%%, %dB summaries\n",
		obj, current, oldEst, proposed, newEst, 100*gain, summaryBytes)

	if !apply {
		fmt.Println("dry run; pass -apply to migrate")
		return nil
	}
	// A change of the replication degree is explicit operator intent and
	// is applied regardless of the gain bar; the bar only filters
	// same-size churn.
	if gain < minGain && len(proposed) == len(current) {
		fmt.Printf("gain below -min-gain %.1f%%; not migrating\n", 100*minGain)
		return nil
	}

	ops, err := store.PlanMigration(store.ObjectID(obj), current, proposed)
	if err != nil {
		return err
	}
	msp := f.tracer.Start(root.Context(), "migrate", trace.KindMigrate)
	msp.SetAttr("ops", strconv.Itoa(len(ops)))
	defer msp.End()
	ctx := trace.ContextWithSpan(context.Background(), msp)
	for _, op := range ops {
		if op.Copy {
			src, dst := f.byNode[op.Source], f.byNode[op.Target]
			resp, _, err := src.client.GetCtx(ctx, -1, nil, obj)
			if err != nil {
				msp.SetErr(err)
				return err
			}
			if err := dst.client.PutCtx(ctx, obj, resp.Data, resp.Version+1); err != nil {
				msp.SetErr(err)
				return err
			}
			fmt.Printf("copied %q: node %d → node %d\n", obj, op.Source, op.Target)
		} else {
			if err := f.byNode[op.Target].client.DeleteCtx(ctx, obj); err != nil {
				msp.SetErr(err)
				return err
			}
			fmt.Printf("deleted %q at node %d\n", obj, op.Target)
		}
	}
	root.MarkAnomalous("migrated")
	// Age the summaries so the next cycle reflects fresh demand.
	for _, m := range holders {
		if err := m.client.DecayCtx(ctx, 0.5); err != nil {
			msp.SetErr(err)
			return err
		}
	}
	fmt.Println("migration complete")
	return nil
}

// exportTrace merges the coordinator's recorded spans with every
// reachable daemon's server-side legs and writes the result as JSONL.
func (f *fleet) exportTrace(path string) error {
	sets := [][]trace.Trace{f.rec.Traces()}
	for _, m := range f.members {
		ts, err := m.client.Trace()
		if err != nil {
			fmt.Fprintf(os.Stderr, "georepctl: no traces from node %d (%s): %v\n", m.node, m.addr, err)
			continue
		}
		sets = append(sets, ts)
	}
	merged := trace.Merge(sets...)
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(fh, merged); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d span trees to %s\n", len(merged), path)
	return nil
}

// Command georepctl is the coordinator CLI for a fleet of georepd
// storage nodes: inspect the fleet, read and write objects, and run one
// cycle of the paper's Algorithm 1 — collect micro-cluster summaries,
// weighted-k-means them, and migrate an object toward its users.
//
// Usage:
//
//	georepctl -nodes host1:port,host2:port status
//	georepctl -nodes ... put   -obj key -data "payload" [-version 2]
//	georepctl -nodes ... get   -obj key
//	georepctl -nodes ... read  -obj key -client 7 -client-coord "10,-3,42"
//	georepctl -nodes ... rebalance -obj key -k 2 [-min-gain 0.05] [-apply]
//	georepctl -nodes ... decay -factor 0.5
//	georepctl -nodes ... metrics [-metric daemon_rpc]
//
// read acts as a client at the given coordinate: it fetches the object
// from the predicted-closest holder, which records the access in that
// node's micro-cluster summary — the signal rebalance feeds on.
//
// Rebalance prints the proposed placement and its estimated improvement;
// with -apply it executes the migration via put/delete RPCs and ages the
// summaries. Nodes must have been started with -coord so the coordinator
// knows where they sit in latency space.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/store"
	"github.com/georep/georep/internal/transport"
	"github.com/georep/georep/internal/vec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "georepctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("georepctl", flag.ContinueOnError)
	var (
		nodesFlag   = fs.String("nodes", "", "comma-separated daemon addresses")
		obj         = fs.String("obj", "", "object id")
		data        = fs.String("data", "", "object payload for put")
		version     = fs.Uint64("version", 1, "object version for put")
		k           = fs.Int("k", 2, "replication degree for rebalance")
		clientID    = fs.Int("client", -1, "client node id for read")
		clientPos   = fs.String("client-coord", "", "client coordinate for read, comma-separated floats")
		decayFactor = fs.Float64("factor", 0.5, "summary aging factor for decay")
		minGain     = fs.Float64("min-gain", 0.05, "minimum relative estimated gain to apply a rebalance")
		apply       = fs.Bool("apply", false, "execute the rebalance instead of printing the plan")
		parallelism = fs.Int("parallelism", 0, "worker goroutines for rebalance clustering (0 = all cores, 1 = serial; same plan either way)")
		timeout     = fs.Duration("timeout", 3*time.Second, "dial timeout per node")
		callTimeout = fs.Duration("call-timeout", 0, "per-RPC deadline (0 = transport default)")
		retries     = fs.Int("retries", 0, "max attempts per idempotent RPC with exponential backoff (0 = no retries)")
		metricFilt  = fs.String("metric", "", "substring filter for metrics names (metrics command)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// flag stops at the first positional argument, so accept flags both
	// before and after the command: extract the command, then parse the
	// rest as flags too.
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("need a command: status, get, put, read, rebalance, decay, metrics")
	}
	cmd := rest[0]
	if err := fs.Parse(rest[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *nodesFlag == "" {
		return fmt.Errorf("-nodes is required")
	}

	var opts []transport.ClientOption
	if *callTimeout > 0 {
		opts = append(opts, transport.WithCallTimeout(*callTimeout))
	}
	if *retries > 1 {
		p := transport.DefaultRetryPolicy()
		p.MaxAttempts = *retries
		opts = append(opts, transport.WithRetryPolicy(p))
	}

	fleet, err := dialFleet(strings.Split(*nodesFlag, ","), *timeout, opts...)
	if err != nil {
		return err
	}
	defer fleet.close()

	switch cmd {
	case "status":
		return fleet.status()
	case "get":
		if *obj == "" {
			return fmt.Errorf("get needs -obj")
		}
		return fleet.get(*obj)
	case "put":
		if *obj == "" {
			return fmt.Errorf("put needs -obj")
		}
		return fleet.put(*obj, []byte(*data), *version)
	case "read":
		if *obj == "" {
			return fmt.Errorf("read needs -obj")
		}
		pos, err := parseFloats(*clientPos)
		if err != nil {
			return err
		}
		return fleet.read(*obj, *clientID, pos)
	case "rebalance":
		if *obj == "" {
			return fmt.Errorf("rebalance needs -obj")
		}
		return fleet.rebalance(*obj, *k, *minGain, *apply, *parallelism)
	case "decay":
		if *decayFactor <= 0 || *decayFactor > 1 {
			return fmt.Errorf("decay needs -factor in (0,1]")
		}
		return fleet.decay(*decayFactor)
	case "metrics":
		return fleet.metrics(os.Stdout, *metricFilt)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// member is one daemon the coordinator talks to.
type member struct {
	addr   string
	client *daemon.Client
	node   int
	coord  coord.Coordinate
}

type fleet struct {
	members []*member
	byNode  map[int]*member
}

// dialFleet connects to every reachable daemon. Nodes that cannot be
// dialed or that stall the identifying coord call are skipped with a
// warning rather than failing the fleet — a coordinator that dies
// because one node is down would be useless exactly when it matters.
func dialFleet(addrs []string, timeout time.Duration, opts ...transport.ClientOption) (*fleet, error) {
	f := &fleet{byNode: make(map[int]*member)}
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c, err := daemon.DialNode(addr, timeout, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "georepctl: skipping unreachable node %s: %v\n", addr, err)
			continue
		}
		cr, err := c.Coord()
		if err != nil {
			fmt.Fprintf(os.Stderr, "georepctl: skipping unreachable node %s: %v\n", addr, err)
			c.Close()
			continue
		}
		m := &member{
			addr:   addr,
			client: c,
			node:   cr.Node,
			coord:  coord.Coordinate{Pos: vec.Vec(cr.Pos), Height: cr.Height},
		}
		if dup, ok := f.byNode[m.node]; ok {
			f.close()
			return nil, fmt.Errorf("nodes %s and %s both report id %d", dup.addr, addr, m.node)
		}
		f.members = append(f.members, m)
		f.byNode[m.node] = m
	}
	if len(f.members) == 0 {
		return nil, fmt.Errorf("no reachable nodes")
	}
	return f, nil
}

func (f *fleet) close() {
	for _, m := range f.members {
		m.client.Close()
	}
}

func (f *fleet) status() error {
	fmt.Printf("%-6s%-24s%10s%12s%12s%10s  %s\n",
		"node", "addr", "objects", "bytes", "accesses", "ping", "coordinate")
	for _, m := range f.members {
		st, err := m.client.Stats()
		if err != nil {
			return err
		}
		rtt, err := m.client.Ping()
		if err != nil {
			return err
		}
		coordStr := "unknown"
		if len(m.coord.Pos) > 0 {
			coordStr = fmt.Sprintf("%.1f (h=%.1f)", []float64(m.coord.Pos), m.coord.Height)
		}
		fmt.Printf("%-6d%-24s%10d%12d%12d%10s  %s\n",
			m.node, m.addr, st.Objects, st.Bytes, st.Accesses,
			rtt.Round(time.Microsecond), coordStr)
	}
	return nil
}

func (f *fleet) get(obj string) error {
	for _, m := range f.members {
		resp, rtt, err := m.client.Get(-1, nil, obj)
		if err != nil {
			continue // not on this node
		}
		fmt.Printf("node %d (%s) v%d %dB in %s\n%s\n",
			m.node, m.addr, resp.Version, len(resp.Data), rtt.Round(time.Microsecond), resp.Data)
		return nil
	}
	return fmt.Errorf("object %q not found on any node", obj)
}

func (f *fleet) put(obj string, data []byte, version uint64) error {
	for _, m := range f.members {
		if err := m.client.Put(obj, data, version); err != nil {
			return err
		}
		fmt.Printf("stored %q v%d at node %d (%s)\n", obj, version, m.node, m.addr)
	}
	return nil
}

// read acts as a client: it finds the holders of the object, picks the
// one with the lowest predicted RTT from the client coordinate, and
// issues a summarized read there.
func (f *fleet) read(obj string, clientID int, clientPos []float64) error {
	holders, err := f.holders(obj)
	if err != nil {
		return err
	}
	if len(holders) == 0 {
		return fmt.Errorf("object %q not found on any node", obj)
	}
	best := holders[0]
	if len(clientPos) > 0 {
		clientCoord := coord.Coordinate{Pos: vec.Vec(clientPos)}
		bestD := clientCoord.DistanceTo(best.coord)
		for _, m := range holders[1:] {
			if len(m.coord.Pos) == 0 {
				continue
			}
			if d := clientCoord.DistanceTo(m.coord); d < bestD {
				best, bestD = m, d
			}
		}
	}
	resp, rtt, err := best.client.Get(clientID, clientPos, obj)
	if err != nil {
		return err
	}
	fmt.Printf("read %q v%d (%dB) from node %d in %s\n",
		obj, resp.Version, len(resp.Data), best.node, rtt.Round(time.Microsecond))
	return nil
}

// metrics fetches and pretty-prints every node's metrics snapshot.
// filter, when non-empty, keeps only metric names containing it.
func (f *fleet) metrics(w io.Writer, filter string) error {
	keep := func(name string) bool {
		return filter == "" || strings.Contains(name, filter)
	}
	for _, m := range f.members {
		s, err := m.client.Metrics()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "node %d (%s)\n", m.node, m.addr)
		for _, name := range metrics.SortedNames(s.Counters) {
			if keep(name) {
				fmt.Fprintf(w, "  %-44s %12d\n", name, s.Counters[name])
			}
		}
		for _, name := range metrics.SortedNames(s.Gauges) {
			if keep(name) {
				fmt.Fprintf(w, "  %-44s %12.3f\n", name, s.Gauges[name])
			}
		}
		for _, name := range metrics.SortedNames(s.Histograms) {
			if !keep(name) {
				continue
			}
			h := s.Histograms[name]
			fmt.Fprintf(w, "  %-44s n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
				name, h.Count, h.Mean(), h.P50, h.P95, h.P99, h.Max)
		}
	}
	return nil
}

// decay ages every node's summary — an operator's manual epoch boundary.
func (f *fleet) decay(factor float64) error {
	for _, m := range f.members {
		if err := m.client.Decay(factor); err != nil {
			return err
		}
		fmt.Printf("aged summaries at node %d by %.2f\n", m.node, factor)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate component %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// holders returns the members currently storing the object.
func (f *fleet) holders(obj string) ([]*member, error) {
	var out []*member
	for _, m := range f.members {
		objs, err := m.client.List()
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			if o == obj {
				out = append(out, m)
				break
			}
		}
	}
	return out, nil
}

func (f *fleet) rebalance(obj string, k int, minGain float64, apply bool, parallelism int) error {
	if k <= 0 || k > len(f.members) {
		return fmt.Errorf("k=%d out of [1,%d]", k, len(f.members))
	}
	for _, m := range f.members {
		if len(m.coord.Pos) == 0 {
			return fmt.Errorf("node %d (%s) has no coordinate; start georepd with -coord", m.node, m.addr)
		}
	}
	holders, err := f.holders(obj)
	if err != nil {
		return err
	}
	if len(holders) == 0 {
		return fmt.Errorf("object %q not found on any node", obj)
	}

	// Collect summaries from the current holders.
	var micros []cluster.Micro
	var summaryBytes int
	var current []int
	for _, m := range holders {
		ms, n, err := m.client.Micros()
		if err != nil {
			return err
		}
		micros = append(micros, ms...)
		summaryBytes += n
		current = append(current, m.node)
	}
	if len(micros) == 0 {
		return fmt.Errorf("no access summaries yet; let clients read %q first", obj)
	}

	// Dense coordinate table indexed by node id.
	maxNode := 0
	for _, m := range f.members {
		if m.node > maxNode {
			maxNode = m.node
		}
	}
	coords := make([]coord.Coordinate, maxNode+1)
	var candidates []int
	for _, m := range f.members {
		coords[m.node] = m.coord
		candidates = append(candidates, m.node)
	}

	proposed, err := replica.ProposePlacementOpt(rand.New(rand.NewSource(time.Now().UnixNano())),
		micros, k, candidates, coords, cluster.Options{Parallelism: parallelism})
	if err != nil {
		return err
	}
	oldEst, err := replica.EstimateMeanDelay(micros, current, coords)
	if err != nil {
		return err
	}
	newEst, err := replica.EstimateMeanDelay(micros, proposed, coords)
	if err != nil {
		return err
	}
	gain := 0.0
	if oldEst > 0 {
		gain = (oldEst - newEst) / oldEst
	}
	fmt.Printf("object %q: current %v (est %.1f ms) → proposed %v (est %.1f ms), gain %.1f%%, %dB summaries\n",
		obj, current, oldEst, proposed, newEst, 100*gain, summaryBytes)

	if !apply {
		fmt.Println("dry run; pass -apply to migrate")
		return nil
	}
	// A change of the replication degree is explicit operator intent and
	// is applied regardless of the gain bar; the bar only filters
	// same-size churn.
	if gain < minGain && len(proposed) == len(current) {
		fmt.Printf("gain below -min-gain %.1f%%; not migrating\n", 100*minGain)
		return nil
	}

	ops, err := store.PlanMigration(store.ObjectID(obj), current, proposed)
	if err != nil {
		return err
	}
	for _, op := range ops {
		if op.Copy {
			src, dst := f.byNode[op.Source], f.byNode[op.Target]
			resp, _, err := src.client.Get(-1, nil, obj)
			if err != nil {
				return err
			}
			if err := dst.client.Put(obj, resp.Data, resp.Version+1); err != nil {
				return err
			}
			fmt.Printf("copied %q: node %d → node %d\n", obj, op.Source, op.Target)
		} else {
			if err := f.byNode[op.Target].client.Delete(obj); err != nil {
				return err
			}
			fmt.Printf("deleted %q at node %d\n", obj, op.Target)
		}
	}
	// Age the summaries so the next cycle reflects fresh demand.
	for _, m := range holders {
		if err := m.client.Decay(0.5); err != nil {
			return err
		}
	}
	fmt.Println("migration complete")
	return nil
}

package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/georep/georep/internal/daemon"
)

// startTestFleet launches three in-process daemons arranged in a right
// triangle in coordinate space and returns their comma-joined addresses.
func startTestFleet(t *testing.T) string {
	t.Helper()
	coords := [][]float64{{0, 0}, {100, 0}, {0, 100}}
	var addrs string
	for i, pos := range coords {
		n, err := daemon.NewNode(daemon.Config{
			ID: i, MicroClusters: 6, Dims: 2,
			Coordinate: pos, Height: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		if i > 0 {
			addrs += ","
		}
		addrs += n.Addr()
	}
	return addrs
}

func TestCtlFullCycle(t *testing.T) {
	nodes := startTestFleet(t)
	put := []string{"-nodes", nodes, "put", "-obj", "o", "-data", "payload"}
	if err := run(put); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-nodes", nodes, "status"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-nodes", nodes, "get", "-obj", "o"}); err != nil {
		t.Fatal(err)
	}
	// Reads from a client near (0,100): summaries accumulate at the
	// closest holder.
	for i := 0; i < 8; i++ {
		err := run([]string{"-nodes", nodes, "read", "-obj", "o",
			"-client", "9", "-client-coord", "2,98"})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Dry run, then apply with k=1: the single replica should end up at
	// node 2 (0,100), nearest the readers.
	if err := run([]string{"-nodes", nodes, "rebalance", "-obj", "o", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-nodes", nodes, "rebalance", "-obj", "o", "-k", "1", "-apply"})
	if err != nil {
		t.Fatal(err)
	}

	// Verify placement via a direct client.
	addrs := splitAddrs(nodes)
	holders := 0
	var holderNode int
	for i, addr := range addrs {
		c, err := daemon.DialNode(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		objs, err := c.List()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(objs) == 1 {
			holders++
			holderNode = i
		}
	}
	if holders != 1 {
		t.Fatalf("object on %d nodes, want 1", holders)
	}
	if holderNode != 2 {
		t.Errorf("object at node %d, want 2 (nearest the readers)", holderNode)
	}
}

func TestCtlErrors(t *testing.T) {
	nodes := startTestFleet(t)
	cases := [][]string{
		{},                                    // no command
		{"-nodes", nodes},                     // no command
		{"-nodes", nodes, "bogus"},            // unknown command
		{"status"},                            // missing -nodes
		{"-nodes", nodes, "get"},              // missing -obj
		{"-nodes", nodes, "put"},              // missing -obj
		{"-nodes", nodes, "read"},             // missing -obj
		{"-nodes", nodes, "rebalance"},        // missing -obj
		{"-nodes", nodes, "get", "-obj", "x"}, // not found
		{"-nodes", nodes, "rebalance", "-obj", "x", "-k", "9"},         // k too big
		{"-nodes", "127.0.0.1:1", "status"},                            // dead node
		{"-nodes", nodes, "read", "-obj", "x", "-client-coord", "a,b"}, // bad floats
		{"-nodes", nodes, "status", "extra"},                           // stray args
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestCtlDecay(t *testing.T) {
	nodes := startTestFleet(t)
	if err := run([]string{"-nodes", nodes, "put", "-obj", "d", "-data", "x"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		err := run([]string{"-nodes", nodes, "read", "-obj", "d",
			"-client", "3", "-client-coord", "1,1"})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{"-nodes", nodes, "decay", "-factor", "0.5"}); err != nil {
		t.Fatal(err)
	}
	// Summaries halved: 8 reads → 4.
	addr := splitAddrs(nodes)[0]
	c, err := daemon.DialNode(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ms, _, err := c.Micros()
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	for _, m := range ms {
		count += m.Count
	}
	if count != 4 {
		t.Errorf("decayed count = %d, want 4", count)
	}
	if err := run([]string{"-nodes", nodes, "decay", "-factor", "2"}); err == nil {
		t.Error("factor > 1 should fail")
	}
	if err := run([]string{"-nodes", nodes, "decay", "-factor", "0"}); err == nil {
		t.Error("factor 0 should fail")
	}
}

func TestCtlRebalanceWithoutSummaries(t *testing.T) {
	nodes := startTestFleet(t)
	if err := run([]string{"-nodes", nodes, "put", "-obj", "q", "-data", "d"}); err != nil {
		t.Fatal(err)
	}
	// No client reads yet → rebalance must refuse gracefully.
	err := run([]string{"-nodes", nodes, "rebalance", "-obj", "q", "-k", "1"})
	if err == nil {
		t.Error("rebalance without summaries should fail")
	}
}

func TestCtlDuplicateNodeIDsRejected(t *testing.T) {
	n1, err := daemon.NewNode(daemon.Config{ID: 5, MicroClusters: 4, Dims: 2, Coordinate: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := daemon.NewNode(daemon.Config{ID: 5, MicroClusters: 4, Dims: 2, Coordinate: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*daemon.Node{n1, n2} {
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { n1.Close(); n2.Close() })
	addrs := fmt.Sprintf("%s,%s", n1.Addr(), n2.Addr())
	if err := run([]string{"-nodes", addrs, "status"}); err == nil {
		t.Error("duplicate node ids should be rejected")
	}
}

func splitAddrs(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func TestCtlMetrics(t *testing.T) {
	nodes := startTestFleet(t)
	if err := run([]string{"-nodes", nodes, "put", "-obj", "m", "-data", "x"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		err := run([]string{"-nodes", nodes, "read", "-obj", "m",
			"-client", "3", "-client-coord", "1,1"})
		if err != nil {
			t.Fatal(err)
		}
	}
	// End-to-end through the command parser.
	if err := run([]string{"-nodes", nodes, "metrics"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-nodes", nodes, "metrics", "-metric", "daemon_rpc"}); err != nil {
		t.Fatal(err)
	}

	// Rendered output: dial the fleet directly and check the table.
	f, err := dialFleet(splitAddrs(nodes), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	var buf strings.Builder
	if err := f.metrics(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"node 0", "node 1", "node 2",
		"daemon_rpc_put_total", "daemon_rpc_get_ms", "transport_server_bytes_in_total", "p95=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	// The filter drops unrelated metric families.
	buf.Reset()
	if err := f.metrics(&buf, "transport_"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "daemon_rpc_put_total") {
		t.Errorf("filter did not apply:\n%s", buf.String())
	}
}

// TestCtlMetricsWatchSurvivesRestart kills the watched daemon and
// brings it back on the same port: the watch must degrade to backoff
// notices while the node is down and resume rendering frames once it
// returns, instead of dying on the first dead connection.
func TestCtlMetricsWatchSurvivesRestart(t *testing.T) {
	cfg := daemon.Config{ID: 0, MicroClusters: 4, Dims: 2, Coordinate: []float64{0, 0}, Height: 1}
	n, err := daemon.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := n.Addr()

	f, err := dialFleet([]string{addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()

	// Take the daemon down before the first frame, restart it shortly
	// after on the same address (a rolling restart as the watch sees it).
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	restarted := make(chan *daemon.Node, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		n2, err := daemon.NewNode(cfg)
		if err == nil {
			err = n2.Start(addr)
		}
		if err != nil {
			t.Errorf("restart on %s: %v", addr, err)
			restarted <- nil
			return
		}
		restarted <- n2
	}()
	defer func() {
		if n2 := <-restarted; n2 != nil {
			n2.Close()
		}
	}()

	var buf strings.Builder
	if err := f.metricsWatch(&buf, "daemon_rpc", 100*time.Millisecond, 25); err != nil {
		t.Fatalf("watch died across restart: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "retrying in") {
		t.Errorf("no backoff notice while the daemon was down:\n%s", out)
	}
	if !strings.Contains(out, "daemon_rpc_put_total") {
		t.Errorf("no frame rendered after the restart:\n%s", out)
	}
}

// TestCtlMetricsWatchGivesUp pins the failure bound: a fleet that never
// comes back ends the watch with an error naming the miss count.
func TestCtlMetricsWatchGivesUp(t *testing.T) {
	n, err := daemon.NewNode(daemon.Config{ID: 0, MicroClusters: 4, Dims: 2, Coordinate: []float64{0, 0}, Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	f, err := dialFleet([]string{n.Addr()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err = f.metricsWatch(&buf, "", 100*time.Millisecond, 0)
	if err == nil || !strings.Contains(err.Error(), "giving up after") {
		t.Fatalf("dead fleet should end the watch with a give-up error, got %v", err)
	}
}

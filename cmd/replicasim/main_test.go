package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/georep/georep/internal/trace"
)

// The full paper-scale run is exercised out of band (results_paper_scale
// .txt); these tests drive the CLI wiring at miniature scale.

func TestRunFigure1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-fig", "1", "-runs", "1", "-nodes", "40"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-fig", "3", "-runs", "1", "-nodes", "40", "-maxk", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCoordFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-fig", "rnp", "-runs", "1", "-nodes", "30", "-coord", "vivaldi"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                           // nothing to do
		{"-coord", "bogus", "-all"},  // unknown algorithm
		{"-fig", "1", "-runs", "0"},  // no runs
		{"-fig", "1", "-nodes", "2"}, // world too small
		{"-unknown-flag"},            // flag error
		{"-fig", "1", "-runs", "1", "-nodes", "10"}, // numDCs=30 > nodes → instance error
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestRunFailuresTraceExport drives the seeded fault run end to end and
// checks both export formats: the JSONL replays into span trees where a
// degraded epoch's trace names the faulted node, and the Chrome file is
// valid trace_event JSON.
func TestRunFailuresTraceExport(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "spans.jsonl")
	chrome := filepath.Join(dir, "spans.chrome.json")
	if err := run([]string{"-fig", "failures", "-fault-seed", "1",
		"-trace-out", jsonl, "-trace-chrome", chrome}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no span trees exported")
	}
	var sawFaultedDegraded bool
	for _, tr := range traces {
		if tr.Anomaly != "degraded" && tr.Anomaly != "below_quorum" {
			continue
		}
		nodes := map[string]bool{}
		named := false
		for _, s := range tr.Spans {
			nodes[s.Node] = true
			if s.Err != "" && (strings.Contains(s.Err, "crashed") ||
				strings.Contains(s.Err, "partitioned") || strings.Contains(s.Err, "dropping")) {
				named = true
			}
		}
		if named && len(nodes) > 1 {
			sawFaultedDegraded = true
		}
	}
	if !sawFaultedDegraded {
		t.Fatal("no degraded epoch trace spans multiple nodes and names its fault")
	}

	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("chrome trace has no complete events")
	}
}

package main

import (
	"testing"
)

// The full paper-scale run is exercised out of band (results_paper_scale
// .txt); these tests drive the CLI wiring at miniature scale.

func TestRunFigure1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-fig", "1", "-runs", "1", "-nodes", "40"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-fig", "3", "-runs", "1", "-nodes", "40", "-maxk", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCoordFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-fig", "rnp", "-runs", "1", "-nodes", "30", "-coord", "vivaldi"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                           // nothing to do
		{"-coord", "bogus", "-all"},  // unknown algorithm
		{"-fig", "1", "-runs", "0"},  // no runs
		{"-fig", "1", "-nodes", "2"}, // world too small
		{"-unknown-flag"},            // flag error
		{"-fig", "1", "-runs", "1", "-nodes", "10"}, // numDCs=30 > nodes → instance error
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

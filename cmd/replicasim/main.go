// Command replicasim reproduces the paper's evaluation: every figure and
// table of "Towards Optimal Data Replication Across Data Centers"
// (ICDCS Workshops 2011), on a synthetic PlanetLab-like testbed.
//
// Usage:
//
//	replicasim -all                 # everything, paper-scale (30 runs, 226 nodes)
//	replicasim -fig 1               # Figure 1: delay vs number of data centers
//	replicasim -fig 2               # Figure 2: delay vs degree of replication
//	replicasim -fig 3               # Figure 3: delay vs micro-cluster budget
//	replicasim -fig rnp             # §III-A: coordinate accuracy (RNP vs Vivaldi)
//	replicasim -fig drift           # extension: gradual migration under drifting demand
//	replicasim -fig quorum          # ablation: quorum reads vs placement geometry
//	replicasim -fig threshold       # ablation: migration-gain threshold sweep
//	replicasim -fig capacity        # ablation: per-DC capacity limits (load balancing)
//	replicasim -fig readwrite       # ablation: optimal k vs read/write ratio
//	replicasim -fig routing         # §III-A: predicted-closest-replica routing accuracy
//	replicasim -fig tail            # ablation: mean vs p95 placement objectives
//	replicasim -fig strategies      # all seven strategies vs k (heuristic comparison)
//	replicasim -fig failures        # robustness: mean delay under a seeded fault plan
//	replicasim -fig writepath       # robustness: leader-based writes under faults (see -write-ratio)
//	replicasim -fig scale           # extension: planet-scale streaming ingest (see -clients, -rate)
//	replicasim -fig multiobject     # extension: fleet placement with demand-signature grouping (see -objects)
//	replicasim -table 2             # Table II: online vs offline clustering cost
//	replicasim -fig 2 -runs 5       # faster, noisier
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/experiment"
	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/replog"
	"github.com/georep/georep/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replicasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replicasim", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "", "figure to reproduce: 1, 2, 3, rnp, drift, quorum, threshold, capacity, readwrite, routing, tail, strategies, failures, writepath, scale or multiobject")
		table       = fs.String("table", "", "table to reproduce: 2")
		all         = fs.Bool("all", false, "reproduce every figure and table")
		runs        = fs.Int("runs", 30, "simulation runs to average over (paper: 30)")
		nodes       = fs.Int("nodes", 226, "testbed size (paper: 226 PlanetLab nodes)")
		algo        = fs.String("coord", "rnp", "coordinate algorithm: rnp or vivaldi")
		micro       = fs.Int("m", 10, "micro-clusters per replica for the online strategy")
		maxK        = fs.Int("maxk", 7, "largest degree of replication in Figure 2/3")
		seedTable   = fs.Int64("seed", 1, "seed for Table II workload generation")
		csv         = fs.Bool("csv", false, "emit figures as CSV instead of aligned text")
		faultPlan   = fs.String("fault-plan", "", "override the failures scenario with a fault-plan DSL string (see internal/faults)")
		faultSeed   = fs.Int64("fault-seed", 1, "seed for the failures scenario")
		traceOut    = fs.String("trace-out", "", "write the failures or writepath run's per-epoch span trees as JSONL to this file (writepath exports the faulted pass, SLO pins included)")
		traceChrome = fs.String("trace-chrome", "", "write the failures or writepath run's span trees in Chrome trace_event format to this file (load via chrome://tracing or Perfetto)")
		ledgerOut   = fs.String("ledger-out", "", "write the drift/failures/scale run's epoch decisions as a durable ledger to this directory (audit with georepctl audit)")
		clients     = fs.Int("clients", 0, "scale figure: synthetic client population (0 = default 100k)")
		rate        = fs.Int("rate", 0, "scale figure: accesses generated per epoch (0 = default 50k)")
		shards      = fs.Int("ingest-shards", 0, "scale figure: per-replica ingest shards, power of two (0 = default 8)")
		objects     = fs.Int("objects", 0, "multiobject figure: fleet size (0 = default 200)")
		writeRatio  = fs.Float64("write-ratio", 0, "writepath figure: write share of the mixed workload (0 = default 0.2)")
		leaderPol   = fs.String("leader-policy", "", "writepath figure: leader placement policy, centroid or fanout (default centroid)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *fig == "" && *table == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -fig or -table")
	}

	setup := experiment.DefaultSetup()
	setup.Nodes = *nodes
	var err error
	setup.CoordAlgorithm, err = coord.ParseAlgorithm(*algo)
	if err != nil {
		return err
	}

	needWorlds := *all || (*fig != "" && *fig != "drift" && *fig != "threshold" && *fig != "failures" && *fig != "writepath" && *fig != "scale" && *fig != "multiobject")
	var worlds []*experiment.World
	if needWorlds {
		start := time.Now()
		fmt.Printf("building %d worlds (%d nodes, %s coordinates)...\n", *runs, *nodes, *algo)
		worlds, err = experiment.BuildWorlds(*runs, setup)
		if err != nil {
			return err
		}
		fmt.Printf("done in %s\n\n", time.Since(start).Round(time.Millisecond))
	}

	ks := make([]int, 0, *maxK)
	for k := 1; k <= *maxK; k++ {
		ks = append(ks, k)
	}

	if *all || *fig == "1" {
		fig, err := experiment.Figure1(worlds, []int{5, 10, 15, 20, 25, 30}, 3,
			experiment.PaperStrategies(*micro))
		if err != nil {
			return err
		}
		printFigure(fig, *csv)
	}
	if *all || *fig == "2" {
		fig, err := experiment.Figure2(worlds, 20, ks, experiment.PaperStrategies(*micro))
		if err != nil {
			return err
		}
		printFigure(fig, *csv)
	}
	if *all || *fig == "3" {
		fig, err := experiment.Figure3(worlds, 20, ks, []int{1, 2, 4, 7, 11})
		if err != nil {
			return err
		}
		printFigure(fig, *csv)
	}
	if *all || *fig == "rnp" {
		rows, err := experiment.CoordAccuracy(worlds, setup)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderAccuracy(rows))
	}
	if *all || *fig == "drift" {
		cfg := experiment.DefaultDriftConfig()
		cfg.Setup.CoordAlgorithm = setup.CoordAlgorithm
		led, closeLedger, err := openLedger(*ledgerOut, *fig == "drift")
		if err != nil {
			return err
		}
		cfg.Ledger = led
		res, err := experiment.Drift(1, cfg)
		if cerr := closeLedger(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderDrift(res))
	}
	if *all || *fig == "quorum" {
		// The exhaustive quorum search is the expensive part; cap the
		// candidate count to keep C(n,k) reasonable.
		fig, err := experiment.QuorumAblation(worlds, 20, 3, *micro)
		if err != nil {
			return err
		}
		printFigure(fig, *csv)
	}
	if *all || *fig == "threshold" {
		cfg := experiment.DefaultDriftConfig()
		cfg.Setup.CoordAlgorithm = setup.CoordAlgorithm
		rows, err := experiment.ThresholdSweep(1, cfg, []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8})
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderThresholdSweep(rows))
	}
	if *all || *fig == "readwrite" {
		fig, err := experiment.ReadWriteAblation(worlds, 20, *micro,
			[]int{1, 2, 3, 5, 7}, []float64{0.5, 0.7, 0.9, 0.95, 0.99, 1.0})
		if err != nil {
			return err
		}
		printFigure(fig, *csv)
	}
	if *all || *fig == "capacity" {
		fig, err := experiment.CapacityAblation(worlds, 20, 3, *micro, 6)
		if err != nil {
			return err
		}
		printFigure(fig, *csv)
	}
	if *all || *fig == "strategies" {
		fig, err := experiment.Figure2(worlds, 20, ks, experiment.AllStrategies(*micro))
		if err != nil {
			return err
		}
		fig.Title = "All strategies: delay vs degree of replication (20 data centers)"
		printFigure(fig, *csv)
	}
	if *all || *fig == "tail" {
		rows, err := experiment.TailAblation(worlds, 20, 3, *micro)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderTail(rows))
	}
	if *all || *fig == "routing" {
		rows, err := experiment.RoutingAccuracy(worlds, 20, *micro, []int{2, 3, 5, 7})
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderRouting(rows))
	}
	if *all || *fig == "failures" {
		cfg := experiment.DefaultFailureConfig()
		cfg.Setup.CoordAlgorithm = setup.CoordAlgorithm
		cfg.Plan = *faultPlan
		var rec *trace.FlightRecorder
		if *traceOut != "" || *traceChrome != "" {
			rec = trace.NewFlightRecorder(trace.DefaultRecent, trace.DefaultAnomalous)
			cfg.Trace = rec
		}
		led, closeLedger, err := openLedger(*ledgerOut, *fig == "failures")
		if err != nil {
			return err
		}
		cfg.Ledger = led
		res, err := experiment.Failure(*faultSeed, cfg)
		if cerr := closeLedger(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFailure(res))
		if rec != nil {
			if err := exportTraces(rec.Traces(), *traceOut, *traceChrome); err != nil {
				return err
			}
		}
	}
	if *all || *fig == "writepath" {
		cfg := experiment.DefaultWritePathConfig()
		cfg.Setup.CoordAlgorithm = setup.CoordAlgorithm
		cfg.Plan = *faultPlan
		if *writeRatio > 0 {
			cfg.WriteFraction = *writeRatio
		}
		if *leaderPol != "" {
			cfg.LeaderPolicy, err = replog.ParseLeaderPolicy(*leaderPol)
			if err != nil {
				return err
			}
		}
		res, err := experiment.WritePath(*faultSeed, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderWritePath(res))
		if *traceOut != "" || *traceChrome != "" {
			if err := exportTraces(res.Traces, *traceOut, *traceChrome); err != nil {
				return err
			}
		}
	}
	if *all || *fig == "scale" {
		cfg := experiment.DefaultScaleConfig()
		cfg.Setup.CoordAlgorithm = setup.CoordAlgorithm
		if *clients > 0 {
			cfg.Clients = *clients
		}
		if *rate > 0 {
			cfg.Rate = *rate
		}
		if *shards > 0 {
			cfg.IngestShards = *shards
		}
		led, closeLedger, err := openLedger(*ledgerOut, *fig == "scale")
		if err != nil {
			return err
		}
		cfg.Ledger = led
		res, err := experiment.Scale(1, cfg)
		if cerr := closeLedger(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderScale(res))
	}
	if *all || *fig == "multiobject" {
		cfg := experiment.DefaultMultiObjectConfig()
		cfg.Setup.CoordAlgorithm = setup.CoordAlgorithm
		if *objects > 0 {
			cfg.Objects = *objects
		}
		led, closeLedger, err := openLedger(*ledgerOut, *fig == "multiobject")
		if err != nil {
			return err
		}
		cfg.Ledger = led
		res, err := experiment.MultiObject(1, cfg)
		if cerr := closeLedger(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderMultiObject(res))
	}
	if *all || *table == "2" {
		rows, err := experiment.Table2(rand.New(rand.NewSource(*seedTable)), experiment.DefaultCostConfig())
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderCostTable(rows))
	}
	return nil
}

// openLedger opens the -ledger-out directory for the figure that owns
// it. enabled keeps -all runs from interleaving two experiments' epochs
// in one ledger: only an explicitly requested drift/failures figure
// writes. The returned close function is a no-op when disabled.
func openLedger(dir string, enabled bool) (*ledger.Ledger, func() error, error) {
	if dir == "" || !enabled {
		return nil, func() error { return nil }, nil
	}
	l, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("recording epoch ledger to %s\n", dir)
	return l, l.Close, nil
}

// exportTraces writes the collected span trees to the requested files:
// JSONL (one span per line, replayable via trace.ReadJSONL and
// georepctl trace -in) and Chrome trace_event JSON.
func exportTraces(traces []trace.Trace, jsonlPath, chromePath string) error {
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		if err := trace.WriteJSONL(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d span trees to %s\n", len(traces), jsonlPath)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace of %d trees to %s\n", len(traces), chromePath)
	}
	return nil
}

// printFigure emits a figure as aligned text or CSV.
func printFigure(fig *experiment.Figure, asCSV bool) {
	if asCSV {
		fmt.Printf("# %s\n%s\n", fig.Title, fig.CSV())
		return
	}
	fmt.Println(fig.Render())
}

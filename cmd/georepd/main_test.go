package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/metrics"
)

// startDaemon runs the daemon in a goroutine and returns its addresses
// and a stopper.
func startDaemon(t *testing.T, args []string) (bound addrs, stop func()) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, sig, ready) }()
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return bound, func() {
		sig <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop")
		}
	}
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-node", "4", "-dims", "2",
		"-coord", "1.5,2.5", "-height", "0.5",
	})
	defer stop()
	if bound.Metrics != "" {
		t.Errorf("metrics address %q bound without -metrics-addr", bound.Metrics)
	}

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	resp, _, err := c.Get(1, []float64{0, 0}, "k")
	if err != nil || string(resp.Data) != "v" {
		t.Fatalf("get: %v %+v", err, resp)
	}
	cr, err := c.Coord()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Node != 4 || len(cr.Pos) != 2 || cr.Pos[0] != 1.5 || cr.Height != 0.5 {
		t.Errorf("coord = %+v", cr)
	}
}

func TestDaemonWithMatrixDelay(t *testing.T) {
	dir := t.TempDir()
	matrix := filepath.Join(dir, "m.txt")
	// 2 nodes, RTT 50ms; timescale 1 so a read from client 1 sleeps 50ms.
	if err := os.WriteFile(matrix, []byte("2\n0 50\n50 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-node", "0", "-dims", "2", "-matrix", matrix,
	})
	defer stop()

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	_, rtt, err := c.Get(1, []float64{0, 0}, "k")
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 50*time.Millisecond {
		t.Errorf("rtt %v below emulated 50ms", rtt)
	}
}

// TestMetricsEndpoint drives RPCs at a daemon and asserts the HTTP
// metrics endpoint serves a JSON snapshot whose counters advance.
func TestMetricsEndpoint(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-node", "2", "-dims", "2", "-coord", "3,4",
	})
	defer stop()
	if bound.Metrics == "" {
		t.Fatal("no metrics address bound")
	}

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	const reads = 3
	for i := 0; i < reads; i++ {
		if _, _, err := c.Get(1, []float64{1, 1}, "k"); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(path string) metrics.Snapshot {
		t.Helper()
		resp, err := http.Get("http://" + bound.Metrics + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %s", path, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		s, err := metrics.UnmarshalSnapshot(body)
		if err != nil {
			t.Fatalf("bad snapshot JSON: %v\n%s", err, body)
		}
		return s
	}

	s := fetch("/metrics")
	if got := s.Counters["daemon_rpc_get_total"]; got != reads {
		t.Errorf("daemon_rpc_get_total = %d, want %d", got, reads)
	}
	if s.Counters["transport_server_requests_total"] < reads+1 {
		t.Errorf("transport_server_requests_total = %d, want >= %d",
			s.Counters["transport_server_requests_total"], reads+1)
	}
	if h := s.Histograms["daemon_rpc_get_ms"]; h.Count != reads {
		t.Errorf("daemon_rpc_get_ms count = %d, want %d", h.Count, reads)
	}

	// Counters advance across further traffic, on both endpoint paths.
	if _, _, err := c.Get(1, []float64{1, 1}, "k"); err != nil {
		t.Fatal(err)
	}
	s2 := fetch("/debug/vars")
	if s2.Counters["daemon_rpc_get_total"] != reads+1 {
		t.Errorf("daemon_rpc_get_total after extra read = %d, want %d",
			s2.Counters["daemon_rpc_get_total"], reads+1)
	}
}

func TestDaemonArgErrors(t *testing.T) {
	sig := make(chan os.Signal)
	cases := [][]string{
		{"-coord", "1,2", "-dims", "3"},            // dim mismatch
		{"-coord", "a,b", "-dims", "2"},            // bad floats
		{"-matrix", "/nonexistent"},                // missing matrix
		{"-m", "0"},                                // invalid budget
		{"-unknown-flag"},                          // flag error
		{"-addr", "256.256.256.256:99999"},         // unbindable address
		{"-metrics-addr", "256.256.256.256:99999"}, // unbindable metrics address
	}
	for _, args := range cases {
		if err := run(args, sig, nil); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestDaemonMatrixNodeRange(t *testing.T) {
	dir := t.TempDir()
	matrix := filepath.Join(dir, "m.txt")
	if err := os.WriteFile(matrix, []byte("2\n0 50\n50 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal)
	err := run([]string{"-matrix", matrix, "-node", "9"}, sig, nil)
	if err == nil {
		t.Error("node outside matrix should fail")
	}
}

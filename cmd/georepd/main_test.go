package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/trace"
	"github.com/georep/georep/internal/transport"
)

// startDaemon runs the daemon in a goroutine and returns its addresses
// and a stopper.
func startDaemon(t *testing.T, args []string) (bound addrs, stop func()) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, sig, ready) }()
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return bound, func() {
		sig <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop")
		}
	}
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-node", "4", "-dims", "2",
		"-coord", "1.5,2.5", "-height", "0.5",
	})
	defer stop()
	if bound.Metrics != "" {
		t.Errorf("metrics address %q bound without -metrics-addr", bound.Metrics)
	}

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	resp, _, err := c.Get(1, []float64{0, 0}, "k")
	if err != nil || string(resp.Data) != "v" {
		t.Fatalf("get: %v %+v", err, resp)
	}
	cr, err := c.Coord()
	if err != nil {
		t.Fatal(err)
	}
	if cr.Node != 4 || len(cr.Pos) != 2 || cr.Pos[0] != 1.5 || cr.Height != 0.5 {
		t.Errorf("coord = %+v", cr)
	}
}

func TestDaemonWithMatrixDelay(t *testing.T) {
	dir := t.TempDir()
	matrix := filepath.Join(dir, "m.txt")
	// 2 nodes, RTT 50ms; timescale 1 so a read from client 1 sleeps 50ms.
	if err := os.WriteFile(matrix, []byte("2\n0 50\n50 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-node", "0", "-dims", "2", "-matrix", matrix,
	})
	defer stop()

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	_, rtt, err := c.Get(1, []float64{0, 0}, "k")
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 50*time.Millisecond {
		t.Errorf("rtt %v below emulated 50ms", rtt)
	}
}

// TestMetricsEndpoint drives RPCs at a daemon and asserts the JSON
// metrics endpoints serve a snapshot whose counters advance.
func TestMetricsEndpoint(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-node", "2", "-dims", "2", "-coord", "3,4",
	})
	defer stop()
	if bound.Metrics == "" {
		t.Fatal("no metrics address bound")
	}

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	const reads = 3
	for i := 0; i < reads; i++ {
		if _, _, err := c.Get(1, []float64{1, 1}, "k"); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(path string) metrics.Snapshot {
		t.Helper()
		resp, err := http.Get("http://" + bound.Metrics + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %s", path, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		s, err := metrics.UnmarshalSnapshot(body)
		if err != nil {
			t.Fatalf("bad snapshot JSON: %v\n%s", err, body)
		}
		return s
	}

	s := fetch("/metrics.json")
	if got := s.Counters["daemon_rpc_get_total"]; got != reads {
		t.Errorf("daemon_rpc_get_total = %d, want %d", got, reads)
	}
	if s.Counters["transport_server_requests_total"] < reads+1 {
		t.Errorf("transport_server_requests_total = %d, want >= %d",
			s.Counters["transport_server_requests_total"], reads+1)
	}
	if h := s.Histograms["daemon_rpc_get_ms"]; h.Count != reads {
		t.Errorf("daemon_rpc_get_ms count = %d, want %d", h.Count, reads)
	}

	// Counters advance across further traffic, on both endpoint paths.
	if _, _, err := c.Get(1, []float64{1, 1}, "k"); err != nil {
		t.Fatal(err)
	}
	s2 := fetch("/debug/vars")
	if s2.Counters["daemon_rpc_get_total"] != reads+1 {
		t.Errorf("daemon_rpc_get_total after extra read = %d, want %d",
			s2.Counters["daemon_rpc_get_total"], reads+1)
	}
}

// TestPrometheusEndpoint asserts /metrics speaks the text exposition
// format: typed families, sane values, and counters matching traffic.
func TestPrometheusEndpoint(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-dims", "2",
	})
	defer stop()

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(1, []float64{1, 1}, "k"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + bound.Metrics + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE georep_daemon_rpc_get_total counter",
		"georep_daemon_rpc_get_total 1",
		"# TYPE georep_daemon_rpc_get_ms histogram",
		`georep_daemon_rpc_get_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHealthzEndpoint: the liveness probe answers 200 ok.
func TestHealthzEndpoint(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
	})
	defer stop()
	resp, err := http.Get("http://" + bound.Metrics + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %s %q", resp.Status, body)
	}
}

// TestTraceEndpoint: traced traffic surfaces as JSONL span trees at
// /trace and as trace_event JSON with ?format=chrome; -trace=false
// turns the endpoint into a 404.
func TestTraceEndpoint(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-node", "5", "-dims", "2",
	})
	defer stop()

	rec := trace.NewFlightRecorder(8, 4)
	tr := trace.New(rec, "probe")
	c, err := daemon.DialNode(bound.RPC, time.Second, transport.WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	root := tr.StartRoot("probe", trace.KindEpoch)
	ctx := trace.ContextWithSpan(context.Background(), root)
	if _, _, err := c.GetCtx(ctx, 1, []float64{1, 1}, "k"); err != nil {
		t.Fatal(err)
	}
	root.End()

	resp, err := http.Get("http://" + bound.Metrics + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %s", resp.Status)
	}
	traces, err := trace.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, tt := range traces {
		for _, s := range tt.Spans {
			if s.Name == "serve.get" && s.Node == "node5" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no serve.get span from node5 in %d traces", len(traces))
	}

	chromeResp, err := http.Get("http://" + bound.Metrics + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chromeResp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(chromeResp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome format: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace empty")
	}

	// Tracing off: endpoint 404s, daemon still serves RPCs.
	boundOff, stopOff := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-trace=false",
	})
	defer stopOff()
	offResp, err := http.Get("http://" + boundOff.Metrics + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	offResp.Body.Close()
	if offResp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /trace = %s, want 404", offResp.Status)
	}
}

// TestPprofOptIn: /debug/pprof/ is absent by default and served with
// -pprof.
func TestPprofOptIn(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
	})
	resp, err := http.Get("http://" + bound.Metrics + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	stop()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof = %s, want 404", resp.Status)
	}

	bound, stop = startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-pprof",
	})
	defer stop()
	resp, err = http.Get("http://" + bound.Metrics + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -pprof = %s, want 200", resp.Status)
	}
}

func TestDaemonArgErrors(t *testing.T) {
	sig := make(chan os.Signal)
	cases := [][]string{
		{"-coord", "1,2", "-dims", "3"},            // dim mismatch
		{"-coord", "a,b", "-dims", "2"},            // bad floats
		{"-matrix", "/nonexistent"},                // missing matrix
		{"-m", "0"},                                // invalid budget
		{"-unknown-flag"},                          // flag error
		{"-log", "loud"},                           // unknown log level
		{"-log", "=debug"},                         // empty component
		{"-addr", "256.256.256.256:99999"},         // unbindable address
		{"-metrics-addr", "256.256.256.256:99999"}, // unbindable metrics address
	}
	for _, args := range cases {
		if err := run(args, sig, nil); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestDaemonMatrixNodeRange(t *testing.T) {
	dir := t.TempDir()
	matrix := filepath.Join(dir, "m.txt")
	if err := os.WriteFile(matrix, []byte("2\n0 50\n50 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal)
	err := run([]string{"-matrix", matrix, "-node", "9"}, sig, nil)
	if err == nil {
		t.Error("node outside matrix should fail")
	}
}

// copySeededLedger clones the committed seeded explain ledger (see
// cmd/georepctl/testdata) into a temp dir so the daemon under test
// never touches the committed artifact.
func copySeededLedger(t *testing.T) string {
	t.Helper()
	src := filepath.Join("..", "georepctl", "testdata", "explain_seed")
	segs, err := filepath.Glob(filepath.Join(src, "ledger-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no committed seeded ledger at %s: %v", src, err)
	}
	dir := t.TempDir()
	for _, s := range segs {
		raw, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(s)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestHealthzPagesWith503: once an SLO objective pages, the readiness
// probe flips to 503 with a JSON body naming the burning objective, and
// recovers to 200 is not asserted (the budget stays burned for the
// period) — orchestrators see the degradation the operator is paged
// for.
func TestHealthzPagesWith503(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-dims", "2",
		"-slo", "avail ratio(daemon_rpc_errors_total / daemon_rpc_total) <= 0.001",
		"-slo-interval", "5ms",
	})
	defer stop()

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Keep the budget burning: every get of a missing key errors, and
		// the page state needs bad events inside the fast windows.
		if _, _, err := c.Get(1, []float64{0, 0}, "missing-key"); err == nil {
			t.Fatal("get of a missing key should error")
		}
		resp, err := http.Get("http://" + bound.Metrics + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			var v struct {
				Status    string  `json:"status"`
				Objective string  `json:"objective"`
				BurnFast  float64 `json:"burn_fast"`
			}
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatalf("healthz 503 body is not JSON: %v\n%s", err, body)
			}
			if v.Status != "degraded" || v.Objective != "avail" || v.BurnFast <= 1 {
				t.Fatalf("healthz 503 body = %+v", v)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never turned 503 while paging (last: %s %q)", resp.Status, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExplainEndpointAndRPC: with -ledger-dir, the daemon serves
// decision provenance over both /explain and the explain RPC; without
// it, /explain 404s and the RPC fails with a pointer to the flag.
func TestExplainEndpointAndRPC(t *testing.T) {
	dir := copySeededLedger(t)
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-dims", "2",
		"-ledger-dir", dir,
	})
	defer stop()

	resp, err := http.Get("http://" + bound.Metrics + "/explain?epoch=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain = %s", resp.Status)
	}
	var rep struct {
		Epoch int `json:"epoch"`
		Rows  []struct {
			Prov *struct {
				Reason          string `json:"reason"`
				Counterfactuals []any  `json:"counterfactuals"`
			} `json:"prov"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 5 || len(rep.Rows) == 0 || rep.Rows[0].Prov == nil {
		t.Fatalf("/explain report = %+v", rep)
	}
	if rep.Rows[0].Prov.Reason != "held-budget" || len(rep.Rows[0].Prov.Counterfactuals) < 3 {
		t.Fatalf("epoch 5 provenance = %+v", rep.Rows[0].Prov)
	}

	// Bad epoch parameter is a client error, not a 500.
	badResp, err := http.Get("http://" + bound.Metrics + "/explain?epoch=x")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /explain?epoch=x = %s, want 400", badResp.Status)
	}

	// The RPC serves the same JSON to georepctl.
	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Explain(5, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"reason":"held-budget"`) {
		t.Fatalf("explain RPC JSON missing provenance:\n%s", raw)
	}

	// No ledger: endpoint 404s, RPC errors with the flag hint.
	boundOff, stopOff := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-dims", "2",
	})
	defer stopOff()
	offResp, err := http.Get("http://" + boundOff.Metrics + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	offResp.Body.Close()
	if offResp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /explain = %s, want 404", offResp.Status)
	}
	cOff, err := daemon.DialNode(boundOff.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cOff.Close()
	if _, err := cOff.Explain(-1, ""); err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("explain RPC without a ledger should fail with a hint, got %v", err)
	}
}

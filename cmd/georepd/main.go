// Command georepd runs one storage node of the replica-placement system:
// a TCP daemon serving object reads/writes, summarizing client accesses
// into micro-clusters, and exposing the coordination protocol (summary
// export, decay, migration puts/deletes).
//
// A coordinator (see examples/kvcluster for a complete in-process one)
// periodically collects each daemon's summary, runs weighted k-means,
// and moves replicas with plain put/delete calls.
//
// Usage:
//
//	georepd -addr 127.0.0.1:7001 -node 0 -m 10 -dims 3
//	georepd -addr 127.0.0.1:7002 -node 1 -matrix matrix.txt   # emulate WAN RTTs
//	georepd -addr 127.0.0.1:7001 -metrics-addr 127.0.0.1:9090 # JSON metrics over HTTP
//	georepd -addr 127.0.0.1:7001 -fault-plan "crash 0@2-4"    # chaos-test this node
//
// With -metrics-addr the daemon also serves its metrics registry as an
// expvar-style JSON document over HTTP at /metrics (and /debug/vars):
// RPC counts and errors per method, transport bytes in/out, handler
// latency histograms with p50/p95/p99, and summary-export sizes.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/faults"
	"github.com/georep/georep/internal/latency"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "georepd:", err)
		os.Exit(1)
	}
}

// addrs reports where a started daemon listens: the RPC address and,
// when -metrics-addr is given, the HTTP metrics address.
type addrs struct {
	RPC     string
	Metrics string
}

// run starts the daemon and blocks until a signal arrives on stop. If
// ready is non-nil, the bound addresses are sent on it once listening.
func run(args []string, stop <-chan os.Signal, ready chan<- addrs) error {
	fs := flag.NewFlagSet("georepd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		nodeID      = fs.Int("node", 0, "this node's index in the deployment")
		micro       = fs.Int("m", 10, "micro-cluster budget")
		dims        = fs.Int("dims", 3, "client coordinate dimensionality")
		matrixPath  = fs.String("matrix", "", "RTT matrix file; reads are delayed by RTT(client,node) to emulate a WAN")
		scale       = fs.Float64("timescale", 1.0, "emulated delay multiplier (0.1 = 10x faster demos)")
		coordFlag   = fs.String("coord", "", "this node's network coordinate as comma-separated floats, e.g. \"12.5,-3.1,40.2\"")
		height      = fs.Float64("height", 0, "height component of this node's coordinate")
		metricsAddr = fs.String("metrics-addr", "", "HTTP address serving the JSON metrics snapshot; empty disables")
		faultPlan   = fs.String("fault-plan", "", "inject faults from a plan DSL, e.g. \"crash 2@5-8; drop *>0:0.2@1-10\" (see internal/faults); the decay RPC advances the epoch")
		faultSeed   = fs.Int64("fault-seed", 1, "seed for -fault-plan coin flips")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var inj *faults.Injector
	if *faultPlan != "" {
		plan, err := faults.Parse(*faultSeed, *faultPlan)
		if err != nil {
			return err
		}
		if inj, err = faults.NewInjector(plan); err != nil {
			return err
		}
	}

	var delay daemon.DelayFunc
	if *matrixPath != "" {
		f, err := os.Open(*matrixPath)
		if err != nil {
			return err
		}
		m, err := latency.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if *nodeID < 0 || *nodeID >= m.N() {
			return fmt.Errorf("node %d outside matrix of %d nodes", *nodeID, m.N())
		}
		delay = func(client int) time.Duration {
			if client < 0 || client >= m.N() {
				return 0
			}
			return time.Duration(m.RTT(client, *nodeID) * *scale * float64(time.Millisecond))
		}
	}

	var selfCoord []float64
	if *coordFlag != "" {
		for _, f := range strings.Split(*coordFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("bad -coord component %q: %w", f, err)
			}
			selfCoord = append(selfCoord, v)
		}
		if len(selfCoord) != *dims {
			return fmt.Errorf("-coord has %d components, -dims is %d", len(selfCoord), *dims)
		}
	}

	n, err := daemon.NewNode(daemon.Config{
		ID:                       *nodeID,
		MicroClusters:            *micro,
		Dims:                     *dims,
		Delay:                    delay,
		Coordinate:               selfCoord,
		Height:                   *height,
		Faults:                   inj,
		AdvanceFaultEpochOnDecay: inj != nil,
	})
	if err != nil {
		return err
	}
	if err := n.Start(*addr); err != nil {
		return err
	}
	fmt.Printf("georepd node %d listening on %s\n", *nodeID, n.Addr())
	if inj != nil {
		fmt.Printf("fault injection active (seed %d): %s\n", *faultSeed, *faultPlan)
	}

	var metricsURL string
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			n.Close()
			return fmt.Errorf("metrics listen %s: %w", *metricsAddr, err)
		}
		metricsURL = ln.Addr().String()
		serve := func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := n.Metrics().WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", serve)
		mux.HandleFunc("/debug/vars", serve)
		metricsSrv = &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		fmt.Printf("metrics on http://%s/metrics\n", metricsURL)
	}
	if ready != nil {
		ready <- addrs{RPC: n.Addr(), Metrics: metricsURL}
	}

	<-stop
	fmt.Println("shutting down")
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	return n.Close()
}

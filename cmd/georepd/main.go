// Command georepd runs one storage node of the replica-placement system:
// a TCP daemon serving object reads/writes, summarizing client accesses
// into micro-clusters, and exposing the coordination protocol (summary
// export, decay, migration puts/deletes).
//
// A coordinator (see examples/kvcluster for a complete in-process one)
// periodically collects each daemon's summary, runs weighted k-means,
// and moves replicas with plain put/delete calls.
//
// Usage:
//
//	georepd -addr 127.0.0.1:7001 -node 0 -m 10 -dims 3
//	georepd -addr 127.0.0.1:7002 -node 1 -matrix matrix.txt   # emulate WAN RTTs
//	georepd -addr 127.0.0.1:7001 -metrics-addr 127.0.0.1:9090 # observability over HTTP
//	georepd -addr 127.0.0.1:7001 -fault-plan "crash 0@2-4"    # chaos-test this node
//	georepd -addr 127.0.0.1:7001 -write-ratio 0.2             # leader write log + replicate RPC
//	georepd -addr 127.0.0.1:7001 -log info,transport=debug    # per-component log levels
//	georepd -addr 127.0.0.1:7001 -slo "avail ratio(daemon_rpc_errors_total / daemon_rpc_total) <= 0.001"
//
// With -metrics-addr the daemon serves an observability surface over
// HTTP:
//
//	/metrics          Prometheus text exposition with georep_-prefixed
//	                  series (scrape this)
//	/metrics.json     the same registry as an expvar-style JSON document
//	/metrics/history  the in-process time-series ring as JSON
//	                  (?lookback=10m; requires -slo)
//	/slo              live SLO status: states, burn rates, budgets
//	                  (requires -slo)
//	/debug/vars       alias of /metrics.json
//	/trace            retained span trees as JSONL (?format=chrome for
//	                  Chrome trace_event / Perfetto)
//	/audit            continuous placement-regret audit report as JSON
//	                  (requires -ledger-dir)
//	/explain          decision provenance report as JSON: reason, cost
//	                  decomposition, scored counterfactuals, regret
//	                  (?epoch=N, default latest; requires -ledger-dir)
//	/healthz          health probe: 200 while healthy, 503 with a JSON
//	                  body naming the paging objective when any SLO
//	                  pages (requires -slo to ever degrade)
//	/debug/pprof/     Go profiling endpoints (only with -pprof)
//
// The metrics cover RPC counts and errors per method, transport bytes
// in/out, handler latency histograms with p50/p95/p99, and summary-
// export sizes. Tracing (-trace, on by default) retains recent span
// trees plus complete trees for anomalous requests in a bounded flight
// recorder; fetch them here, via the trace RPC (georepctl trace), or
// both.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/georep/georep/internal/audit"
	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/explain"
	"github.com/georep/georep/internal/faults"
	"github.com/georep/georep/internal/latency"
	"github.com/georep/georep/internal/ledger"
	"github.com/georep/georep/internal/logging"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/slo"
	"github.com/georep/georep/internal/trace"
)

// maxPageProfiles bounds how many page transitions trigger one-shot
// profile captures, so a flapping objective cannot fill the ledger dir.
const maxPageProfiles = 4

// pageProfiler returns an SLO transition hook that, on each page
// transition (up to limit), writes a one-shot heap profile and a 2s CPU
// profile into dir next to the epoch ledger. Captures run off the
// evaluation goroutine and never overlap: the Go runtime allows only
// one CPU profile at a time.
func pageProfiler(dir string, limit int32) func(slo.Transition) {
	var taken int32
	var busy int32
	return func(t slo.Transition) {
		if t.To != slo.StatePage {
			return
		}
		n := atomic.AddInt32(&taken, 1)
		if n > limit || !atomic.CompareAndSwapInt32(&busy, 0, 1) {
			return
		}
		go func() {
			defer atomic.StoreInt32(&busy, 0)
			base := filepath.Join(dir, fmt.Sprintf("slo_page_%d_%s", n,
				strings.Map(safeFileRune, t.Objective)))
			if f, err := os.Create(base + ".heap.pprof"); err == nil {
				_ = rpprof.Lookup("heap").WriteTo(f, 0)
				f.Close()
			}
			f, err := os.Create(base + ".cpu.pprof")
			if err != nil {
				return
			}
			defer f.Close()
			if err := rpprof.StartCPUProfile(f); err != nil {
				return
			}
			time.Sleep(2 * time.Second)
			rpprof.StopCPUProfile()
		}()
	}
}

// safeFileRune maps objective names onto a filename-safe alphabet.
func safeFileRune(r rune) rune {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		return r
	}
	return '_'
}

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "georepd:", err)
		os.Exit(1)
	}
}

// addrs reports where a started daemon listens: the RPC address and,
// when -metrics-addr is given, the HTTP metrics address.
type addrs struct {
	RPC     string
	Metrics string
}

// run starts the daemon and blocks until a signal arrives on stop. If
// ready is non-nil, the bound addresses are sent on it once listening.
func run(args []string, stop <-chan os.Signal, ready chan<- addrs) error {
	fs := flag.NewFlagSet("georepd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		nodeID      = fs.Int("node", 0, "this node's index in the deployment")
		micro       = fs.Int("m", 10, "micro-cluster budget")
		shards      = fs.Int("ingest-shards", 0, "partition the summary into this many client-hash shards (power of two) so concurrent reads don't serialize; 0 or 1 = unsharded")
		objects     = fs.Bool("objects", false, "maintain a per-object micro-cluster summary alongside the node-wide one, served by the micros RPC with an {Object} body (multi-object coordinators)")
		dims        = fs.Int("dims", 3, "client coordinate dimensionality")
		matrixPath  = fs.String("matrix", "", "RTT matrix file; reads are delayed by RTT(client,node) to emulate a WAN")
		scale       = fs.Float64("timescale", 1.0, "emulated delay multiplier (0.1 = 10x faster demos)")
		coordFlag   = fs.String("coord", "", "this node's network coordinate as comma-separated floats, e.g. \"12.5,-3.1,40.2\"")
		height      = fs.Float64("height", 0, "height component of this node's coordinate")
		metricsAddr = fs.String("metrics-addr", "", "HTTP address serving /metrics, /metrics.json, /trace and /healthz; empty disables")
		writeRatio  = fs.Float64("write-ratio", 0, "expected write share of traffic in [0,1]; > 0 enables the replication write log: puts append CRC-framed entries, replog_* metrics join /metrics, and the replicate RPC serves catch-up batches")
		writeRetain = fs.Int("write-log-retain", 0, "uncompacted write-log tail bound; followers further behind get a snapshot redirect (0 = default)")
		faultPlan   = fs.String("fault-plan", "", "inject faults from a plan DSL, e.g. \"crash 2@5-8; drop *>0:0.2@1-10\" (see internal/faults); the decay RPC advances the epoch")
		faultSeed   = fs.Int64("fault-seed", 1, "seed for -fault-plan coin flips")
		logSpec     = fs.String("log", "info", "log levels: default[,component=level ...] with components daemon and transport, e.g. \"warn,transport=debug\"")
		traceOn     = fs.Bool("trace", true, "retain recent and anomalous span trees in a flight recorder, served at /trace and the trace RPC")
		pprofOn     = fs.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ on -metrics-addr")
		sloSpec     = fs.String("slo", "", "SLO spec DSL, e.g. \"avail ratio(daemon_rpc_errors_total / daemon_rpc_total) <= 0.001; read_p99 p99(daemon_rpc_get_ms) <= 50\" (see internal/slo); enables the metrics history ring, burn-rate alerting, slo_* gauges, the slo RPC, and /slo + /metrics/history on -metrics-addr")
		sloEvery    = fs.Duration("slo-interval", 10*time.Second, "history sampling and SLO evaluation cadence")
		histSamples = fs.Int("history-samples", 360, "metrics history ring capacity (360 at the default cadence = one hour)")
		ledgerDir   = fs.String("ledger-dir", "", "continuously audit the epoch ledger in this directory: regret/drift/quality gauges join /metrics and the report is served at /audit")
		auditEvery  = fs.Duration("audit-interval", 30*time.Second, "how often the -ledger-dir auditor re-reads the ledger")
		auditSeed   = fs.Int64("audit-seed", 1, "seed for the auditor's offline k-means baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logCfg, err := logging.Parse(*logSpec)
	if err != nil {
		return err
	}

	var inj *faults.Injector
	if *faultPlan != "" {
		plan, err := faults.Parse(*faultSeed, *faultPlan)
		if err != nil {
			return err
		}
		if inj, err = faults.NewInjector(plan); err != nil {
			return err
		}
	}

	var delay daemon.DelayFunc
	if *matrixPath != "" {
		f, err := os.Open(*matrixPath)
		if err != nil {
			return err
		}
		m, err := latency.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if *nodeID < 0 || *nodeID >= m.N() {
			return fmt.Errorf("node %d outside matrix of %d nodes", *nodeID, m.N())
		}
		delay = func(client int) time.Duration {
			if client < 0 || client >= m.N() {
				return 0
			}
			return time.Duration(m.RTT(client, *nodeID) * *scale * float64(time.Millisecond))
		}
	}

	var selfCoord []float64
	if *coordFlag != "" {
		for _, f := range strings.Split(*coordFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("bad -coord component %q: %w", f, err)
			}
			selfCoord = append(selfCoord, v)
		}
		if len(selfCoord) != *dims {
			return fmt.Errorf("-coord has %d components, -dims is %d", len(selfCoord), *dims)
		}
	}

	var rec *trace.FlightRecorder
	if *traceOn {
		rec = trace.NewFlightRecorder(trace.DefaultRecent, trace.DefaultAnomalous)
	}
	var onTransition func(slo.Transition)
	if *sloSpec != "" && *pprofOn && *ledgerDir != "" {
		onTransition = pageProfiler(*ledgerDir, maxPageProfiles)
	}
	// Decision-provenance explanations: nodes with a ledger directory
	// answer the explain RPC and serve /explain by re-reading the ledger
	// per request (explanations are an operator surface, not a hot path).
	var explainJSON func(epoch int, objectID string) ([]byte, error)
	if *ledgerDir != "" {
		dir := *ledgerDir
		explainJSON = func(epoch int, objectID string) ([]byte, error) {
			recs, err := ledger.ReadDir(dir)
			if err != nil {
				return nil, err
			}
			rep, err := explain.Build(recs, explain.Options{Epoch: epoch, ObjectID: objectID})
			if err != nil {
				return nil, err
			}
			return json.Marshal(rep)
		}
	}
	n, err := daemon.NewNode(daemon.Config{
		ID:                       *nodeID,
		MicroClusters:            *micro,
		IngestShards:             *shards,
		PerObjectSummaries:       *objects,
		Dims:                     *dims,
		Delay:                    delay,
		Coordinate:               selfCoord,
		Height:                   *height,
		WriteRatio:               *writeRatio,
		WriteLogRetain:           *writeRetain,
		Faults:                   inj,
		AdvanceFaultEpochOnDecay: inj != nil,
		Trace:                    rec,
		SLOSpec:                  *sloSpec,
		SLOInterval:              *sloEvery,
		HistorySamples:           *histSamples,
		OnSLOTransition:          onTransition,
		ExplainJSON:              explainJSON,
		Logger:                   logCfg.Logger(os.Stderr, "daemon"),
		TransportLogger:          logCfg.Logger(os.Stderr, "transport"),
	})
	if err != nil {
		return err
	}
	if err := n.Start(*addr); err != nil {
		return err
	}
	fmt.Printf("georepd node %d listening on %s\n", *nodeID, n.Addr())
	if *writeRatio > 0 {
		fmt.Printf("write log enabled (expected write ratio %.2f): puts append framed entries, replicate serves catch-up\n", *writeRatio)
	}
	if inj != nil {
		fmt.Printf("fault injection active (seed %d): %s\n", *faultSeed, *faultPlan)
	}
	if *sloSpec != "" {
		fmt.Printf("slo engine active (every %s): %s\n", *sloEvery, n.SLO().Spec())
		if onTransition != nil {
			fmt.Printf("page transitions capture cpu+heap profiles to %s (at most %d)\n", *ledgerDir, maxPageProfiles)
		}
	}

	var aw *audit.Watcher
	if *ledgerDir != "" {
		aw = audit.NewWatcher(*ledgerDir, *auditEvery, audit.Config{Seed: *auditSeed}, n.Metrics())
		fmt.Printf("auditing ledger %s every %s\n", *ledgerDir, *auditEvery)
	}

	var metricsURL string
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			if aw != nil {
				aw.Close()
			}
			n.Close()
			return fmt.Errorf("metrics listen %s: %w", *metricsAddr, err)
		}
		metricsURL = ln.Addr().String()
		metricsSrv = &http.Server{Handler: newObsMux(n, rec, aw, *pprofOn, explainJSON)}
		go func() { _ = metricsSrv.Serve(ln) }()
		fmt.Printf("metrics on http://%s/metrics\n", metricsURL)
	}
	if ready != nil {
		ready <- addrs{RPC: n.Addr(), Metrics: metricsURL}
	}

	<-stop
	fmt.Println("shutting down")
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	if aw != nil {
		aw.Close()
	}
	return n.Close()
}

// newObsMux builds the daemon's HTTP observability surface. Responses
// that require marshalling are rendered to a buffer first, so a failure
// becomes a clean 500 rather than a truncated 200.
func newObsMux(n *daemon.Node, rec *trace.FlightRecorder, aw *audit.Watcher, pprofOn bool,
	explainJSON func(epoch int, objectID string) ([]byte, error)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := metrics.WritePrometheusPrefixed(&buf, n.Snapshot(), "georep_"); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	serveJSON := func(w http.ResponseWriter, _ *http.Request) {
		body, err := metrics.MarshalSnapshot(n.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}
	mux.HandleFunc("/metrics.json", serveJSON)
	mux.HandleFunc("/debug/vars", serveJSON)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "tracing disabled (-trace=false)", http.StatusNotFound)
			return
		}
		traces := rec.Traces()
		var buf bytes.Buffer
		var err error
		ct := "application/x-ndjson"
		if r.URL.Query().Get("format") == "chrome" {
			ct = "application/json"
			err = trace.WriteChromeTrace(&buf, traces)
		} else {
			err = trace.WriteJSONL(&buf, traces)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ct)
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		if n.SLO() == nil {
			http.Error(w, "slo engine disabled (start with -slo)", http.StatusNotFound)
			return
		}
		body, err := json.MarshalIndent(n.SLO().Status(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		h := n.History()
		if h == nil {
			http.Error(w, "metrics history disabled (start with -slo)", http.StatusNotFound)
			return
		}
		var since int64 // zero = everything retained
		if lb := r.URL.Query().Get("lookback"); lb != "" {
			d, err := time.ParseDuration(lb)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad lookback %q: %v", lb, err), http.StatusBadRequest)
				return
			}
			since = metrics.SinceNs(time.Now().UnixNano(), d)
		}
		body, err := json.Marshal(h.Dump(since))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, _ *http.Request) {
		if aw == nil {
			http.Error(w, "ledger auditing disabled (start with -ledger-dir)", http.StatusNotFound)
			return
		}
		body, err := json.MarshalIndent(aw.Report(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		if explainJSON == nil {
			http.Error(w, "decision provenance disabled (start with -ledger-dir)", http.StatusNotFound)
			return
		}
		epoch := -1
		if e := r.URL.Query().Get("epoch"); e != "" {
			v, err := strconv.Atoi(e)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad epoch %q: %v", e, err), http.StatusBadRequest)
				return
			}
			epoch = v
		}
		body, err := explainJSON(epoch, r.URL.Query().Get("object"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	// Readiness: 200 while no SLO objective pages; 503 with a JSON body
	// naming the paging objective otherwise, so orchestrators and load
	// balancers see the degradation the operator is being paged for.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if eng := n.SLO(); eng != nil {
			for _, o := range eng.Status().Objectives {
				if o.State != slo.StatePage {
					continue
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]any{
					"status":    "degraded",
					"objective": o.Name,
					"state":     o.State.String(),
					"burn_fast": o.BurnFastShort,
				})
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

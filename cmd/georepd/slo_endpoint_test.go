package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/metrics"
	"github.com/georep/georep/internal/slo"
)

// TestSLOEndpoints covers the -slo HTTP surface: /slo serves the
// engine status, /metrics/history serves the sampled ring (with
// lookback validation), the Prometheus exposition carries the
// georep_slo_* gauges, and both endpoints 404 without -slo.
func TestSLOEndpoints(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-dims", "2",
		"-slo", "avail ratio(daemon_rpc_errors_total / daemon_rpc_total) <= 0.001",
		"-slo-interval", "10ms", "-history-samples", "64",
	})
	defer stop()

	c, err := daemon.DialNode(bound.RPC, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // a few sampler ticks

	resp, err := http.Get("http://" + bound.Metrics + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /slo = %s: %s", resp.Status, body)
	}
	var st slo.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Objectives) != 1 || st.Objectives[0].Name != "avail" {
		t.Fatalf("status objectives: %+v", st.Objectives)
	}
	if st.Objectives[0].State != slo.StateOK {
		t.Fatalf("healthy daemon not ok: %v", st.Objectives[0].State)
	}

	resp, err = http.Get("http://" + bound.Metrics + "/metrics/history?lookback=1m")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/history = %s: %s", resp.Status, body)
	}
	var dump metrics.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Times) == 0 {
		t.Fatal("history dump has no samples")
	}
	if _, ok := dump.Counters["daemon_rpc_total"]; !ok {
		t.Fatalf("history dump missing daemon_rpc_total: %v", dump.Counters)
	}

	resp, err = http.Get("http://" + bound.Metrics + "/metrics/history?lookback=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus lookback = %s; want 400", resp.Status)
	}

	resp, err = http.Get("http://" + bound.Metrics + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "georep_slo_avail_budget_remaining") {
		t.Error("prometheus exposition missing georep_slo_avail_budget_remaining")
	}
}

// TestSLOEndpointsDisabled: without -slo the endpoints answer 404.
func TestSLOEndpointsDisabled(t *testing.T) {
	bound, stop := startDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
	})
	defer stop()
	for _, path := range []string{"/slo", "/metrics/history"} {
		resp, err := http.Get("http://" + bound.Metrics + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s; want 404", path, resp.Status)
		}
	}
}

// Command latgen generates and inspects RTT matrices.
//
// Usage:
//
//	latgen -nodes 226 -seed 1 -out matrix.txt   # generate
//	latgen -summarize matrix.txt                # describe an existing matrix
//	latgen -from-king king.txt -out matrix.txt  # convert a public dataset
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/georep/georep/internal/latency"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "latgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("latgen", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 226, "number of nodes")
		seed      = fs.Int64("seed", 1, "generation seed")
		out       = fs.String("out", "", "output file (default stdout)")
		summarize = fs.String("summarize", "", "print statistics of an existing matrix file instead of generating")
		fromKing  = fs.String("from-king", "", "convert a king/p2psim-format matrix (µs, -1 = missing) to the native format")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *summarize != "" {
		f, err := os.Open(*summarize)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err := latency.Read(f)
		if err != nil {
			return err
		}
		printSummary(m)
		return nil
	}

	var m *latency.Matrix
	if *fromKing != "" {
		f, err := os.Open(*fromKing)
		if err != nil {
			return err
		}
		m, err = latency.ReadKing(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cfg := latency.DefaultGenerateConfig()
		cfg.Nodes = *nodes
		var err error
		m, _, err = latency.Generate(rand.New(rand.NewSource(*seed)), cfg)
		if err != nil {
			return err
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := m.WriteTo(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d-node matrix to %s\n", m.N(), *out)
		printSummary(m)
	}
	return nil
}

func printSummary(m *latency.Matrix) {
	s := m.Summarize()
	fmt.Fprintf(os.Stderr, "nodes=%d mean=%.1fms median=%.1fms p90=%.1fms min=%.1fms max=%.1fms tiv=%.1f%%\n",
		s.N, s.Mean, s.Median, s.P90, s.Min, s.Max, 100*s.TriangleViolationFrac)
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/georep/georep/internal/latency"
)

func TestRunGenerateAndSummarize(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "matrix.txt")
	if err := run([]string{"-nodes", "20", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := latency.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 20 {
		t.Fatalf("N = %d", m.N())
	}
	if err := run([]string{"-summarize", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromKing(t *testing.T) {
	dir := t.TempDir()
	king := filepath.Join(dir, "king.txt")
	if err := os.WriteFile(king, []byte("0 10000\n10000 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "native.txt")
	if err := run([]string{"-from-king", king, "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := latency.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.RTT(0, 1) != 10 {
		t.Fatalf("converted RTT = %v, want 10 ms", m.RTT(0, 1))
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-summarize", "/nonexistent/file"},
		{"-from-king", "/nonexistent/file"},
		{"-nodes", "1"}, // generator needs >= 2
		{"-out", "/nonexistent-dir/x.txt"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

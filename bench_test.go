// Benchmarks regenerating every figure and table of the paper's
// evaluation. Each benchmark measures the cost of producing one data
// point and additionally reports the reproduced metric itself (mean
// access delay in ms, or summary bytes) via b.ReportMetric, so
// `go test -bench .` re-derives the paper's numbers alongside timing.
//
// The full paper-scale run (226 nodes, 30 seeds) lives in
// cmd/replicasim; benchmarks use a reduced-but-representative setting so
// the whole suite completes in minutes.
package georep_test

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"github.com/georep/georep/internal/accesstrace"
	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/experiment"
	"github.com/georep/georep/internal/latency"
	"github.com/georep/georep/internal/placement"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/vec"
)

// benchSetup is shared by the figure benchmarks: 4 worlds of 120 nodes.
var (
	benchOnce   sync.Once
	benchWorlds []*experiment.World
	benchErr    error
)

func worlds(b *testing.B) []*experiment.World {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiment.DefaultSetup()
		cfg.Nodes = 120
		cfg.CoordRounds = 200
		benchWorlds, benchErr = experiment.BuildWorlds(4, cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWorlds
}

// reportDelays attaches each strategy's reproduced mean delay to the
// benchmark output.
func reportDelays(b *testing.B, cells []experiment.Cell) {
	b.Helper()
	for _, c := range cells {
		b.ReportMetric(c.MeanMs, "msDelay_"+c.Strategy)
	}
}

// BenchmarkFigure1DataCenters regenerates Figure 1: mean access delay as
// the number of candidate data centers grows (k=3), for the paper's four
// strategies.
func BenchmarkFigure1DataCenters(b *testing.B) {
	ws := worlds(b)
	for _, dcs := range []int{5, 10, 20, 30} {
		b.Run(benchName("dcs", dcs), func(b *testing.B) {
			var cells []experiment.Cell
			var err error
			for i := 0; i < b.N; i++ {
				cells, err = experiment.RunCell(ws, dcs, 3, experiment.PaperStrategies(10))
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDelays(b, cells)
		})
	}
}

// BenchmarkFigure2Replication regenerates Figure 2: mean access delay as
// the degree of replication grows (20 data centers).
func BenchmarkFigure2Replication(b *testing.B) {
	ws := worlds(b)
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7} {
		b.Run(benchName("k", k), func(b *testing.B) {
			var cells []experiment.Cell
			var err error
			for i := 0; i < b.N; i++ {
				cells, err = experiment.RunCell(ws, 20, k, experiment.PaperStrategies(10))
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDelays(b, cells)
		})
	}
}

// BenchmarkFigure3MicroClusters regenerates Figure 3: the online
// strategy's delay as its per-replica micro-cluster budget m varies
// (20 data centers, k=3).
func BenchmarkFigure3MicroClusters(b *testing.B) {
	ws := worlds(b)
	for _, m := range []int{1, 2, 4, 7, 11} {
		b.Run(benchName("m", m), func(b *testing.B) {
			strategies := []placement.Strategy{placement.Online{M: m, Rounds: 2, AccessesPerClient: 1}}
			var cells []experiment.Cell
			var err error
			for i := 0; i < b.N; i++ {
				cells, err = experiment.RunCell(ws, 20, 3, strategies)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cells[0].MeanMs, "msDelay")
		})
	}
}

// table2Points generates the client-coordinate stream both Table II
// benchmarks consume.
func table2Points(n, dims int) []vec.Vec {
	r := rand.New(rand.NewSource(int64(n)))
	centers := make([]vec.Vec, 12)
	for i := range centers {
		c := vec.New(dims)
		for d := range c {
			c[d] = r.NormFloat64() * 120
		}
		centers[i] = c
	}
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := centers[r.Intn(len(centers))].Clone()
		for d := range p {
			p[d] += r.NormFloat64() * 8
		}
		pts[i] = p
	}
	return pts
}

// BenchmarkTable2OnlineClustering regenerates the online column of
// Table II: summarize n accesses into k·m micro-clusters and
// macro-cluster them. The reported summaryBytes metric is the bandwidth
// the approach ships (O(k·m), independent of n).
func BenchmarkTable2OnlineClustering(b *testing.B) {
	const k, m, dims = 3, 100, 3
	for _, n := range []int{1_000, 10_000, 100_000} {
		pts := table2Points(n, dims)
		b.Run(benchName("n", n), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				summarizers := make([]*cluster.Summarizer, k)
				for j := range summarizers {
					s, err := cluster.NewSummarizer(m, dims)
					if err != nil {
						b.Fatal(err)
					}
					summarizers[j] = s
				}
				for j, p := range pts {
					if err := summarizers[j%k].Observe(p, 1); err != nil {
						b.Fatal(err)
					}
				}
				var micros []cluster.Micro
				bytes = 0
				for _, s := range summarizers {
					enc, err := cluster.EncodeMicros(s.Clusters())
					if err != nil {
						b.Fatal(err)
					}
					bytes += len(enc)
					micros = append(micros, s.Clusters()...)
				}
				if _, err := cluster.MacroCluster(rand.New(rand.NewSource(1)), micros, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bytes), "summaryBytes")
		})
	}
}

// BenchmarkTable2OfflineClustering regenerates the offline column of
// Table II: ship all n raw coordinates and k-means them centrally. The
// reported summaryBytes metric grows linearly with n.
func BenchmarkTable2OfflineClustering(b *testing.B) {
	const k, dims = 3, 3
	for _, n := range []int{1_000, 10_000, 100_000} {
		pts := table2Points(n, dims)
		b.Run(benchName("n", n), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				enc, err := cluster.EncodeCoordinates(pts)
				if err != nil {
					b.Fatal(err)
				}
				bytes = len(enc)
				if _, err := cluster.KMeans(rand.New(rand.NewSource(1)), pts, k, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bytes), "summaryBytes")
		})
	}
}

// BenchmarkCoordEmbedding measures the §III-A substrate: embedding a
// 120-node testbed with each coordinate algorithm, reporting the
// resulting median relative prediction error.
func BenchmarkCoordEmbedding(b *testing.B) {
	cfg := latency.DefaultGenerateConfig()
	cfg.Nodes = 120
	m, _, err := latency.Generate(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []coord.Algorithm{coord.AlgorithmVivaldi, coord.AlgorithmRNP} {
		b.Run(algo.String(), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				emb, err := coord.Embed(rand.New(rand.NewSource(2)), m, coord.EmbedConfig{
					Algorithm: algo, Dims: 3, Rounds: 200, NoiseFrac: 0.1,
				})
				if err != nil {
					b.Fatal(err)
				}
				s, err := coord.EvalError(emb, m)
				if err != nil {
					b.Fatal(err)
				}
				rel = s.MedianRel
			}
			b.ReportMetric(rel, "medianRelErr")
		})
	}
}

// BenchmarkCoordEmbeddingSimnet measures the deployment-faithful
// asynchronous embedding: Poisson gossip through the discrete-event
// simulator, stale coordinates and all.
func BenchmarkCoordEmbeddingSimnet(b *testing.B) {
	cfg := latency.DefaultGenerateConfig()
	cfg.Nodes = 80
	m, _, err := latency.Generate(rand.New(rand.NewSource(4)), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ecfg := coord.DefaultEmbedConfig()
	var rel float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb, err := coord.EmbedOverSimnet(rand.New(rand.NewSource(5)), m, ecfg, 200_000, 1000)
		if err != nil {
			b.Fatal(err)
		}
		s, err := coord.EvalError(emb, m)
		if err != nil {
			b.Fatal(err)
		}
		rel = s.MedianRel
	}
	b.ReportMetric(rel, "medianRelErr")
}

// BenchmarkMicroClusterObserve measures the per-access summarization hot
// path (§III-B): one Observe call on a warm summarizer.
func BenchmarkMicroClusterObserve(b *testing.B) {
	for _, m := range []int{4, 16, 100} {
		b.Run(benchName("m", m), func(b *testing.B) {
			s, err := cluster.NewSummarizer(m, 3)
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(1))
			pts := make([]vec.Vec, 4096)
			for i := range pts {
				pts[i] = vec.Of(r.NormFloat64()*100, r.NormFloat64()*100, r.NormFloat64()*10)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Observe(pts[i%len(pts)], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWeightedKMeans measures the coordinator's macro-clustering
// step over k·m pseudo-points (§III-C) on the serial path.
func BenchmarkWeightedKMeans(b *testing.B) {
	benchWeightedKMeans(b, 1)
}

// BenchmarkWeightedKMeansParallel runs the same clustering with the
// assignment step spread over all cores; centroids are identical, only
// wall-clock differs.
func BenchmarkWeightedKMeansParallel(b *testing.B) {
	benchWeightedKMeans(b, 0)
}

func benchWeightedKMeans(b *testing.B, parallelism int) {
	for _, n := range []int{30, 300, 3000} {
		b.Run(benchName("points", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			pts := make([]vec.Vec, n)
			ws := make([]float64, n)
			for i := range pts {
				pts[i] = vec.Of(r.NormFloat64()*100, r.NormFloat64()*100, r.NormFloat64()*10)
				ws[i] = r.Float64() * 10
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.WeightedKMeansOpt(rand.New(rand.NewSource(2)), pts, ws, 3,
					cluster.Options{Parallelism: parallelism}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimalSearch measures the exhaustive baseline the paper
// calls impractical: C(candidates, k) placements evaluated against all
// clients. Parallelism 0 uses every core.
func BenchmarkOptimalSearch(b *testing.B) {
	benchOptimalSearch(b, 0)
}

// BenchmarkOptimalSearchSerial pins the search to one worker, isolating
// the win from delay memoization and branch-and-bound pruning alone —
// compare against BenchmarkOptimalSearch for the parallel speedup on top.
func BenchmarkOptimalSearchSerial(b *testing.B) {
	benchOptimalSearch(b, 1)
}

// BenchmarkOptimalSearchParallel makes the all-cores configuration
// explicit (identical to BenchmarkOptimalSearch today; kept as a stable
// name for scripts/bench.sh).
func BenchmarkOptimalSearchParallel(b *testing.B) {
	benchOptimalSearch(b, 0)
}

func benchOptimalSearch(b *testing.B, parallelism int) {
	ws := worlds(b)
	w := ws[0]
	for _, k := range []int{2, 3, 4} {
		b.Run(benchName("k", k), func(b *testing.B) {
			in, err := w.Instance(rand.New(rand.NewSource(1)), 20, k)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (placement.Optimal{Parallelism: parallelism}).Place(nil, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkManagerEpoch measures a full live-system epoch: route and
// record 200 client accesses, then run the collection/decision cycle.
func BenchmarkManagerEpoch(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 20)
	for i := range candidates {
		candidates[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr, err := replica.NewManager(replica.Config{K: 3, M: 10, Dims: 3},
			candidates, w.Coords, nil)
		if err != nil {
			b.Fatal(err)
		}
		for c := 20; c < 120; c++ {
			if _, err := mgr.Record(w.Coords[c], 1); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := mgr.EndEpoch(rand.New(rand.NewSource(3))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalSearch measures the swap hill-climber ablation strategy
// at one Figure-2 point, reporting its reproduced delay next to the cost
// that makes it unscalable.
func BenchmarkLocalSearch(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	in, err := w.Instance(rand.New(rand.NewSource(1)), 20, 3)
	if err != nil {
		b.Fatal(err)
	}
	var delay float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps, err := (placement.LocalSearch{}).Place(rand.New(rand.NewSource(2)), in)
		if err != nil {
			b.Fatal(err)
		}
		delay = placement.MeanAccessDelay(in, reps)
	}
	b.ReportMetric(delay, "msDelay")
}

// BenchmarkTraceReplay measures the full replay pipeline: 2000 accesses
// routed, summarized, and coordinated over 4 epochs.
func BenchmarkTraceReplay(b *testing.B) {
	ws := worlds(b)
	w := ws[0]
	candidates := make([]int, 15)
	for i := range candidates {
		candidates[i] = i
	}
	var events []accesstrace.Event
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		events = append(events, accesstrace.Event{
			TimeMs: float64(i),
			Client: 15 + r.Intn(105),
			Group:  "g",
			Bytes:  1,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm, err := replica.NewGroupManager(replica.Config{K: 3, M: 10, Dims: 3},
			candidates, w.Coords)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := accesstrace.Replay(events, gm, w.Coords, w.Matrix.RTT, accesstrace.ReplayConfig{
			EpochMs: 500,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(key string, v int) string {
	return key + "=" + strconv.Itoa(v)
}

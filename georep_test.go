package georep

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/georep/georep/internal/latency"
)

// smallDeployment keeps the facade tests fast.
func smallDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := Simulate(1, WithNodes(50), WithEmbeddingRounds(120))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func splitNodes(d *Deployment, numDCs int) (candidates, clients []int) {
	for i := 0; i < d.Nodes(); i++ {
		if i < numDCs {
			candidates = append(candidates, i)
		} else {
			clients = append(clients, i)
		}
	}
	return candidates, clients
}

func TestSimulateBasics(t *testing.T) {
	d := smallDeployment(t)
	if d.Nodes() != 50 {
		t.Fatalf("Nodes = %d", d.Nodes())
	}
	if d.RTT(0, 0) != 0 {
		t.Error("self RTT should be 0")
	}
	if d.RTT(0, 1) <= 0 {
		t.Error("cross RTT should be positive")
	}
	if d.PredictedRTT(0, 0) != 0 {
		t.Error("self predicted RTT should be 0")
	}
	if d.PredictedRTT(0, 1) <= 0 {
		t.Error("predicted RTT should be positive")
	}
	c := d.Coordinate(0)
	if len(c.Pos) != 3 || c.Height < 0 {
		t.Errorf("coordinate = %+v", c)
	}
	// Coordinate is a copy.
	c.Pos[0] = 1e9
	if d.Coordinate(0).Pos[0] == 1e9 {
		t.Error("Coordinate returned aliased state")
	}
}

func TestSimulateOptions(t *testing.T) {
	d, err := Simulate(2, WithNodes(30), WithEmbeddingRounds(80),
		WithCoordinateAlgorithm("vivaldi"), WithDimensions(2), WithMeasurementNoise(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Coordinate(0).Pos); got != 2 {
		t.Errorf("dims = %d, want 2", got)
	}
	if _, err := Simulate(3, WithNodes(30), WithCoordinateAlgorithm("bogus")); err == nil {
		t.Error("unknown algorithm should fail")
	} else if !strings.Contains(err.Error(), `"bogus"`) {
		t.Errorf("error %q does not name the misspelled algorithm", err)
	}
	if _, err := Simulate(3, WithNodes(1)); err == nil {
		t.Error("1-node deployment should fail")
	}
}

func TestEmbeddingStabilityAndAccuracy(t *testing.T) {
	d := smallDeployment(t)
	st := d.EmbeddingStability()
	if st.DriftMsPerRound <= 0 {
		t.Errorf("drift = %v, want positive residual movement", st.DriftMsPerRound)
	}
	if st.MeanErrorEstimate <= 0 || st.MeanErrorEstimate > 2 {
		t.Errorf("mean error estimate = %v out of plausible range", st.MeanErrorEstimate)
	}
	acc, err := d.EmbeddingAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc.MedianAbsMs <= 0 || acc.MedianRel <= 0 {
		t.Errorf("accuracy = %+v", acc)
	}
	if acc.FracUnder10ms < 0 || acc.FracUnder10ms > 1 {
		t.Errorf("frac under 10ms = %v", acc.FracUnder10ms)
	}
}

func TestCoordinateDistance(t *testing.T) {
	a := Coordinate{Pos: []float64{0, 0}, Height: 1}
	b := Coordinate{Pos: []float64{3, 4}, Height: 2}
	if got := a.DistanceTo(b); got != 8 {
		t.Errorf("DistanceTo = %v, want 8", got)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	// Serialize a generated matrix, load it through the facade.
	cfg := latency.DefaultGenerateConfig()
	cfg.Nodes = 20
	m, _, err := latency.Generate(rand.New(rand.NewSource(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Load(&buf, 5, WithEmbeddingRounds(100))
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes() != 20 {
		t.Fatalf("Nodes = %d", d.Nodes())
	}
	if d.RTT(0, 1) != m.RTT(0, 1) {
		t.Error("loaded RTTs differ from source")
	}
	if _, err := Load(strings.NewReader("garbage"), 1); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestPlaceAllStrategies(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 12)
	for _, s := range Strategies() {
		t.Run(string(s), func(t *testing.T) {
			p, err := d.Place(s, PlaceConfig{K: 3, Candidates: candidates, Clients: clients, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if p.Strategy != s || len(p.Replicas) != 3 || p.MeanDelayMs <= 0 {
				t.Errorf("placement = %+v", p)
			}
		})
	}
	if _, err := d.Place("nope", PlaceConfig{}); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, err := d.Place(StrategyOnline, PlaceConfig{K: 99, Candidates: candidates, Clients: clients}); err == nil {
		t.Error("K > candidates should fail")
	}
}

func TestPlaceOnlineBeatsRandom(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 15)
	var onSum, rdSum float64
	for seed := int64(0); seed < 8; seed++ {
		on, err := d.Place(StrategyOnline, PlaceConfig{K: 3, Candidates: candidates, Clients: clients, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := d.Place(StrategyRandom, PlaceConfig{K: 3, Candidates: candidates, Clients: clients, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		onSum += on.MeanDelayMs
		rdSum += rd.MeanDelayMs
	}
	if onSum >= rdSum {
		t.Errorf("online (%v) should beat random (%v) on average", onSum/8, rdSum/8)
	}
}

func TestMeanAccessDelayFacade(t *testing.T) {
	d := smallDeployment(t)
	_, clients := splitNodes(d, 10)
	got, err := d.MeanAccessDelay(clients, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("delay = %v", got)
	}
	if _, err := d.MeanAccessDelay(clients, nil); err == nil {
		t.Error("no replicas should fail")
	}
	if _, err := d.MeanAccessDelay(nil, []int{0}); err == nil {
		t.Error("no clients should fail")
	}
	if _, err := d.MeanAccessDelay([]int{999}, []int{0}); err == nil {
		t.Error("out-of-range client should fail")
	}
}

func TestManagerLifecycle(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 10)
	m, err := d.NewManager(ManagerConfig{K: 3, Candidates: candidates})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 || len(m.Replicas()) != 3 {
		t.Fatalf("initial state: k=%d replicas=%v", m.K(), m.Replicas())
	}

	// Drive three epochs of the full population.
	for epoch := 0; epoch < 3; epoch++ {
		for _, c := range clients {
			servedBy, rtt, err := m.RecordAccess(c, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rtt < 0 || servedBy < 0 {
				t.Fatalf("access result: servedBy=%d rtt=%v", servedBy, rtt)
			}
		}
		rep, err := m.EndEpoch(int64(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if rep.SummaryBytes <= 0 {
			t.Error("summary bytes not accounted")
		}
		if len(rep.Replicas) != rep.K {
			t.Errorf("report k=%d but %d replicas", rep.K, len(rep.Replicas))
		}
	}

	// After migrating toward real demand, the managed placement should
	// beat the initial (arbitrary) one.
	initial := candidates[:3]
	before, err := d.MeanAccessDelay(clients, initial)
	if err != nil {
		t.Fatal(err)
	}
	after, err := d.MeanAccessDelay(clients, m.Replicas())
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("managed placement (%v ms) worse than initial (%v ms)", after, before)
	}
}

func TestManagerValidation(t *testing.T) {
	d := smallDeployment(t)
	candidates, _ := splitNodes(d, 10)
	if _, err := d.NewManager(ManagerConfig{K: 0, Candidates: candidates}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := d.NewManager(ManagerConfig{K: 2, Candidates: []int{0, 999}}); err == nil {
		t.Error("out-of-range candidate should fail")
	}
	m, err := d.NewManager(ManagerConfig{K: 2, Candidates: candidates})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RecordAccess(-1, 1); err == nil {
		t.Error("out-of-range client should fail")
	}
}

func TestManagerDynamicKFacade(t *testing.T) {
	d := smallDeployment(t)
	candidates, clients := splitNodes(d, 10)
	m, err := d.NewManager(ManagerConfig{
		K: 1, Candidates: candidates,
		MinReplicas: 1, MaxReplicas: 4, GrowAbove: 30, ShrinkBelow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if _, _, err := m.RecordAccess(c, 1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.EndEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 2 {
		t.Errorf("k should grow to 2 under heavy demand, got %d", rep.K)
	}
}

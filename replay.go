package georep

import (
	"fmt"
	"io"

	"github.com/georep/georep/internal/accesstrace"
	"github.com/georep/georep/internal/replica"
)

// AccessEvent is one entry of an application access trace: who read
// which object group, when, and how many bytes moved. Convert production
// logs into this form (or the CSV format of ReadTrace) to evaluate the
// placement system against real demand.
type AccessEvent struct {
	// TimeMs is milliseconds from trace start.
	TimeMs float64
	// Client is the accessing node's index in the deployment.
	Client int
	// Group names the accessed object group.
	Group string
	// Bytes is the transfer size (summary weight).
	Bytes float64
}

// ReadTrace parses a CSV access trace: `time_ms,client,group,bytes` per
// line, optional header, `#` comments allowed.
func ReadTrace(r io.Reader) ([]AccessEvent, error) {
	events, err := accesstrace.Read(r)
	if err != nil {
		return nil, fmt.Errorf("georep: %w", err)
	}
	out := make([]AccessEvent, len(events))
	for i, e := range events {
		out[i] = AccessEvent(e)
	}
	return out, nil
}

// WriteTrace serializes events in the format ReadTrace parses.
func WriteTrace(w io.Writer, events []AccessEvent) error {
	conv := make([]accesstrace.Event, len(events))
	for i, e := range events {
		conv[i] = accesstrace.Event(e)
	}
	if err := accesstrace.Write(w, conv); err != nil {
		return fmt.Errorf("georep: %w", err)
	}
	return nil
}

// ReplayConfig drives a trace replay.
type ReplayConfig struct {
	// Manager configures each group's replica manager (InitialReplicas
	// is ignored; groups start at the first K candidates).
	Manager ManagerConfig
	// EpochMs is the coordinator period in trace time.
	EpochMs float64
	// Seed derives per-epoch clustering randomness.
	Seed int64
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	// Accesses replayed.
	Accesses int
	// MeanDelayMs is the ground-truth mean RTT clients experienced over
	// the whole trace, including the epochs before migration caught up.
	MeanDelayMs float64
	// Epochs and Migrations count coordinator cycles and adopted moves.
	Epochs     int
	Migrations int
	// SummaryBytes is the cumulative collection wire cost.
	SummaryBytes int
	// FinalReplicas maps each group to its placement at trace end.
	FinalReplicas map[string][]int
}

// Replay runs an access trace against the deployment: accesses route to
// the predicted-closest replica of their group, summaries accumulate,
// and every EpochMs the coordinator may migrate. The result reports the
// latency clients would actually have observed.
func (d *Deployment) Replay(events []AccessEvent, cfg ReplayConfig) (*ReplayResult, error) {
	m := cfg.Manager.MicroClusters
	if m <= 0 {
		m = 10
	}
	dims := 0
	if d.matrix.N() > 0 {
		dims = d.coords[0].Pos.Dim()
	}
	for _, c := range cfg.Manager.Candidates {
		if c < 0 || c >= d.matrix.N() {
			return nil, fmt.Errorf("georep: candidate %d out of range", c)
		}
	}
	rcfg := replica.Config{
		K:    cfg.Manager.K,
		M:    m,
		Dims: dims,
		Migration: replica.MigrationPolicy{
			MinRelativeGain: cfg.Manager.MinRelativeGain,
			CostPerByte:     cfg.Manager.MigrationCostPerByte,
			GainPerMsAccess: cfg.Manager.LatencyValuePerMsAccess,
			ObjectBytes:     cfg.Manager.ObjectBytes,
		},
		KPolicy: replica.KPolicy{
			Min:         cfg.Manager.MinReplicas,
			Max:         cfg.Manager.MaxReplicas,
			GrowAbove:   cfg.Manager.GrowAbove,
			ShrinkBelow: cfg.Manager.ShrinkBelow,
		},
		DecayFactor:  cfg.Manager.DecayFactor,
		WindowEpochs: cfg.Manager.WindowEpochs,
	}
	gm, err := replica.NewGroupManager(rcfg, cfg.Manager.Candidates, d.coords)
	if err != nil {
		return nil, fmt.Errorf("georep: replay: %w", err)
	}
	conv := make([]accesstrace.Event, len(events))
	for i, e := range events {
		conv[i] = accesstrace.Event(e)
	}
	res, err := accesstrace.Replay(conv, gm, d.coords, d.matrix.RTT, accesstrace.ReplayConfig{
		EpochMs:  cfg.EpochMs,
		SeedBase: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("georep: replay: %w", err)
	}
	return &ReplayResult{
		Accesses:      res.Accesses,
		MeanDelayMs:   res.MeanDelayMs,
		Epochs:        res.Epochs,
		Migrations:    res.Migrations,
		SummaryBytes:  res.SummaryBytes,
		FinalReplicas: res.FinalReplicas,
	}, nil
}

#!/usr/bin/env bash
# Regenerates BENCH_scale.json and optionally gates on the planet-scale
# ingest claims: the generate-and-ingest hot path must not allocate in
# steady state, and its per-access cost must stay flat as the client
# population grows 10k -> 1M (population only sizes the construction-
# time sampling tables; each access is an O(1) alias draw plus an O(1)
# shard fold). BenchmarkScaleEpoch's sharded/unsharded comparison is
# recorded for context but not gated — it trades a summary-time merge
# for contention-free ingest and either side may win single-threaded.
#
# Noise defenses mirror bench_ledger.sh: minima everywhere (noise only
# ever adds time), the flatness gate uses per-population minima across
# COUNT samples, and a failing gate accumulates another round of
# samples before giving up.
#
# Usage: scripts/bench_scale.sh                 # writes BENCH_scale.json
#        GATE=1 scripts/bench_scale.sh          # exit 1 if not flat/alloc-free
#        COUNT=5 MAX_FLAT_FACTOR=2.5 GATE=1 scripts/bench_scale.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic benchmark environment: strip ambient Go knobs that skew
# numbers between machines and runs (build flags, debug toggles, GC
# tuning), and pin the C locale so awk number formatting is stable.
export GOFLAGS= GODEBUG= GOGC=100 LC_ALL=C LANG=C

BENCHTIME="${BENCHTIME:-200x}"
EPOCH_BENCHTIME="${EPOCH_BENCHTIME:-20x}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_scale.json}"
MAX_FLAT_FACTOR="${MAX_FLAT_FACTOR:-3}"
ATTEMPTS="${ATTEMPTS:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Compile the bench binary once so the measured processes skip the build,
# and fail fast and loudly if the package no longer builds — a broken
# build must read as FAIL, not as a mysteriously empty summary.
if ! go test -run=NONE -c -o /dev/null .; then
  echo "FAIL: benchmark package does not build" >&2
  exit 1
fi

measure() {
  go test -run=NONE -bench='^BenchmarkScaleIngest$' -benchmem \
    -benchtime="$BENCHTIME" -count="$COUNT" . | tee -a "$TMP" >&2
  go test -run=NONE -bench='^BenchmarkScaleEpoch$' -benchmem \
    -benchtime="$EPOCH_BENCHTIME" -count="$COUNT" . | tee -a "$TMP" >&2
}

summarize() {
  awk -v benchtime="$BENCHTIME" -v epochtime="$EPOCH_BENCHTIME" \
      -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" -v goversion="$(go env GOVERSION)" '
  function metric(unit,   i) {
    for (i = 2; i <= NF; i++) if ($i == unit) return $(i-1)
    return ""
  }
  /^BenchmarkScaleIngest\/clients=/ {
    split($1, parts, /[=\-]/); c = parts[2]
    n[c]++
    v = metric("ns/access"); a = metric("allocs/op")
    if (v != "" && (!(c in min) || v + 0 < min[c] + 0)) min[c] = v
    if (a != "" && a + 0 > allocs + 0) allocs = a
  }
  /^BenchmarkScaleEpoch\// {
    split($1, parts, /[\/\-]/); variant = parts[2]
    v = metric("ns/access")
    if (v != "" && (!(variant in emin) || v + 0 < emin[variant] + 0)) emin[variant] = v
  }
  END {
    if (!("10000" in min) || !("100000" in min) || !("1000000" in min)) {
      print "missing ingest benchmark output" > "/dev/stderr"; exit 1
    }
    lo = min["10000"] + 0; hi = lo
    for (c in min) { v = min[c] + 0; if (v < lo) lo = v; if (v > hi) hi = v }
    printf("{\n")
    printf("  \"note\": \"Planet-scale ingest: ns/access are minima over %d samples at %s per population; flat_factor is the worst/best ratio across populations and must stay small — per-access cost may not grow with client count. allocs_per_op is the worst ingest-loop figure and must be 0. epoch_ns_per_access compares one full epoch (generate + ingest + summary export) through the unsharded and sharded paths at %s. Regenerate with scripts/bench_scale.sh; GATE=1 fails the run when flat_factor exceeds the bound or the hot loop allocates.\",\n", n["10000"], benchtime, epochtime)
    printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"goversion\": \"%s\",\n", goos, goarch, goversion)
    printf("  \"ingest_ns_per_access\": {\"10000\": %s, \"100000\": %s, \"1000000\": %s},\n", min["10000"], min["100000"], min["1000000"])
    printf("  \"ingest_allocs_per_op\": %d,\n", allocs + 0)
    printf("  \"epoch_ns_per_access\": {\"unsharded\": %s, \"sharded\": %s},\n", emin["unsharded"], emin["sharded"])
    printf("  \"flat_factor\": %.2f\n", hi / lo)
    printf("}\n")
  }
  ' "$TMP" > "$OUT"
}

attempt=1
while :; do
  measure
  summarize
  echo "wrote $OUT" >&2
  if [[ "${GATE:-0}" == "0" ]]; then
    break
  fi
  flat="$(awk -F': ' '/"flat_factor"/ { gsub(/[ ,}]/, "", $2); print $2 }' "$OUT")"
  allocs="$(awk -F': ' '/"ingest_allocs_per_op"/ { gsub(/[ ,}]/, "", $2); print $2 }' "$OUT")"
  echo "scale ingest: flat_factor ${flat} (max ${MAX_FLAT_FACTOR}), allocs/op ${allocs} (max 0)" >&2
  if awk -v f="$flat" -v max="$MAX_FLAT_FACTOR" -v a="$allocs" \
      'BEGIN { exit (f + 0 > max + 0 || a + 0 > 0) ? 1 : 0 }'; then
    break
  fi
  if (( attempt >= ATTEMPTS )); then
    echo "FAIL: scale ingest not flat/alloc-free after ${ATTEMPTS} rounds (flat_factor ${flat}, allocs/op ${allocs})" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "over the bound; accumulating another round of samples (attempt ${attempt}/${ATTEMPTS})" >&2
done

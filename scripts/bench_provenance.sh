#!/usr/bin/env bash
# Regenerates BENCH_provenance.json and optionally gates on the decision
# provenance engine's hot-epoch-path overhead: BenchmarkProvenanceOverhead
# runs a full manager epoch (100 recorded accesses + collect/decide)
# with capture off and on — the enabled side also attributes per-DC cost
# shares, scores swap counterfactuals, and folds the record into the
# online regret estimator, exactly what every capture-enabled epoch
# does. The record's backing arrays are reused across epochs (the
# steady-state zero-alloc test in internal/replica pins that), so the
# enabled side must stay within MAX_OVERHEAD_PCT of disabled.
#
# Defenses against shared-machine noise mirror bench_slo.sh: the
# variants run in separate processes in ABBA order (disabled, enabled,
# enabled, disabled) so slow-machine drift hits both sides equally; the
# MINIMUM ns/op per variant is compared — scheduler noise only ever
# adds time, so the min is the honest estimate; and a failing gate
# accumulates another round of samples before giving up, since noise
# can make true overhead look bigger but never smaller.
#
# Usage: scripts/bench_provenance.sh            # writes BENCH_provenance.json
#        GATE=1 scripts/bench_provenance.sh     # exit 1 if overhead > 5%
#        COUNT=5 MAX_OVERHEAD_PCT=3 GATE=1 scripts/bench_provenance.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic benchmark environment: strip ambient Go knobs that skew
# numbers between machines and runs (build flags, debug toggles, GC
# tuning), and pin the C locale so awk number formatting is stable.
export GOFLAGS= GODEBUG= GOGC=100 LC_ALL=C LANG=C

# 2000x per sample: capture scratch (per-micro cache, counterfactual
# backing) warms over the first epochs, and shorter samples price that
# one-time warm-up as if it were steady-state overhead.
BENCHTIME="${BENCHTIME:-2000x}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_provenance.json}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5}"
ATTEMPTS="${ATTEMPTS:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Compile the bench binary once so the measured processes skip the build,
# and fail fast and loudly if the package no longer builds — a broken
# build must read as FAIL, not as a mysteriously empty summary.
if ! go test -run=NONE -c -o /dev/null .; then
  echo "FAIL: benchmark package does not build" >&2
  exit 1
fi

measure() {
  for variant in disabled enabled enabled disabled; do
    go test -run=NONE -bench="^BenchmarkProvenanceOverhead/$variant\$" -benchmem \
      -benchtime="$BENCHTIME" -count="$COUNT" . | tee -a "$TMP" >&2
  done
}

summarize() {
  awk -v benchtime="$BENCHTIME" -v goos="$(go env GOOS)" \
      -v goarch="$(go env GOARCH)" -v goversion="$(go env GOVERSION)" '
  /^BenchmarkProvenanceOverhead\/disabled/ { n["d"]++; if (!("d" in min) || $3 < min["d"]) { min["d"] = $3; bytes["d"] = $5; allocs["d"] = $7 } }
  /^BenchmarkProvenanceOverhead\/enabled/  { n["e"]++; if (!("e" in min) || $3 < min["e"]) { min["e"] = $3; bytes["e"] = $5; allocs["e"] = $7 } }
  END {
    if (!("d" in min) || !("e" in min)) { print "missing benchmark output" > "/dev/stderr"; exit 1 }
    overhead = 100 * (min["e"] - min["d"]) / min["d"]
    printf("{\n")
    printf("  \"note\": \"Decision provenance capture overhead on the hot epoch path (manager epoch of 100 accesses + collect/decide; enabled adds per-DC attribution, swap counterfactual scoring, and the online regret estimator per epoch): min ns_per_op over %d ABBA-ordered samples per variant at %s. Regenerate with scripts/bench_provenance.sh; GATE=1 fails the run when overhead_pct exceeds the bound (default 5).\",\n", n["d"], benchtime)
    printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"goversion\": \"%s\",\n", goos, goarch, goversion)
    printf("  \"disabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", min["d"], bytes["d"], allocs["d"])
    printf("  \"enabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", min["e"], bytes["e"], allocs["e"])
    printf("  \"overhead_pct\": %.2f\n", overhead)
    printf("}\n")
  }
  ' "$TMP" > "$OUT"
}

attempt=1
while :; do
  measure
  summarize
  echo "wrote $OUT" >&2
  if [[ "${GATE:-0}" == "0" ]]; then
    break
  fi
  overhead="$(awk -F': ' '/"overhead_pct"/ { gsub(/[ ,}]/, "", $2); print $2 }' "$OUT")"
  echo "provenance overhead: ${overhead}% (max ${MAX_OVERHEAD_PCT}%)" >&2
  if awk -v o="$overhead" -v max="$MAX_OVERHEAD_PCT" 'BEGIN { exit (o > max) ? 1 : 0 }'; then
    break
  fi
  if (( attempt >= ATTEMPTS )); then
    echo "FAIL: provenance overhead ${overhead}% exceeds ${MAX_OVERHEAD_PCT}% after ${ATTEMPTS} rounds" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "over the bound; accumulating another round of samples (attempt ${attempt}/${ATTEMPTS})" >&2
done

#!/usr/bin/env bash
# Prints the benchmark trajectory: one row per committed BENCH_*.json,
# with each subsystem's headline figure (gate overheads, the scale-out
# flatness factor, the multi-object amortization ratio, the parallel
# speedup over the frozen serial seed). The committed JSONs are the
# repo's performance record — this report puts the whole trajectory in
# one table in the CI logs so a regression in any gated number is
# visible next to its neighbours, not just in its own job.
#
# Reads only the committed files; run the individual scripts/bench_*.sh
# to refresh them. awk-only on purpose: no jq dependency.
#
# Usage: scripts/bench_report.sh
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if (( ${#files[@]} == 0 )); then
  echo "no BENCH_*.json files found" >&2
  exit 1
fi

echo "Benchmark trajectory (committed BENCH_*.json):"
echo
printf '%-18s %-36s %s\n' "bench" "headline" "detail"
printf '%-18s %-36s %s\n' "-----" "--------" "------"
for f in "${files[@]}"; do
  awk -v name="${f%.json}" '
  # Pull the first number that follows "key": on the line, tolerating
  # the one-line-object style the bench scripts emit.
  function val(line, key,   re) {
    re = "\"" key "\":[[:space:]]*-?[0-9.]+"
    if (match(line, re)) {
      sub(".*\"" key "\":[[:space:]]*", "", line)
      sub("[^0-9.eE+-].*", "", line)
      return line + 0
    }
    return ""
  }
  /"overhead_pct"/        { overhead = val($0, "overhead_pct"); has_ov = 1 }
  /"disabled"/            { v = val($0, "ns_per_op"); if (v != "") dis = v }
  /"enabled"/             { v = val($0, "ns_per_op"); if (v != "") en = v }
  /"full_cycle_disabled"/ { dis = val($0, "ns_per_op") }
  /"full_cycle_enabled"/  { en = val($0, "ns_per_op") }
  /"flat_factor"/         { flat = val($0, "flat_factor"); has_flat = 1 }
  /"ingest_ns_per_access"/ { ingest1m = val($0, "1000000") }
  /"amortization_factor"/ { amort = val($0, "amortization_factor"); has_amort = 1 }
  /"group_dispatch"/      { disp = val($0, "ns_per_object") }
  # Parallel report: track which section we are in and keep the k=4
  # exhaustive-search figure from each, the heaviest solve in the repo.
  /"baseline"/            { section = "base" }
  /"current"/             { section = "cur" }
  /BenchmarkOptimalSearch\/k=4/ {
    if (section == "base") base_k4 = val($0, "ns_per_op")
    else if (section == "cur" && !cur_k4) cur_k4 = val($0, "ns_per_op")
  }
  END {
    if (has_ov) {
      printf "%-18s %-36s %s\n", name, sprintf("overhead %+.2f%%", overhead),
        sprintf("%d -> %d ns/op (off -> on)", dis, en)
    } else if (has_flat) {
      printf "%-18s %-36s %s\n", name, sprintf("flat_factor %.2fx across populations", flat),
        sprintf("%.1f ns/access at 1M clients, 0 allocs", ingest1m)
    } else if (has_amort) {
      printf "%-18s %-36s %s\n", name, sprintf("amortization %.0fx vs per-object solve", amort),
        sprintf("%.2f ns/object group dispatch", disp)
    } else if (base_k4 && cur_k4) {
      printf "%-18s %-36s %s\n", name, sprintf("OptimalSearch k=4 %.2fx vs serial seed", base_k4 / cur_k4),
        sprintf("%d -> %d ns/op (seed -> current)", base_k4, cur_k4)
    } else {
      printf "%-18s %-36s %s\n", name, "(no recognized headline metric)", ""
    }
  }
  ' "$f"
done

#!/usr/bin/env bash
# Regenerates BENCH_ledger.json and optionally gates on decision-ledger
# overhead. BenchmarkLedgerOverhead has three variants: disabled and
# enabled time the full epoch cycle for absolute numbers, and paired
# interleaves a ledgerless and a logging epoch in ONE process and
# compares minimum EndEpoch latencies — the ledger cost is a handful of
# microseconds, below the process-to-process drift of a shared machine,
# so only the paired comparison resolves it honestly.
#
# Noise defenses: minimums everywhere (scheduler noise only ever adds
# time); the gate takes the BEST paired overhead across samples, since
# noise can make true overhead look bigger but never smaller; and a
# failing gate accumulates another round of samples before giving up.
#
# Usage: scripts/bench_ledger.sh                # writes BENCH_ledger.json
#        GATE=1 scripts/bench_ledger.sh         # exit 1 if overhead > 10%
#        COUNT=5 MAX_OVERHEAD_PCT=3 GATE=1 scripts/bench_ledger.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic benchmark environment: strip ambient Go knobs that skew
# numbers between machines and runs (build flags, debug toggles, GC
# tuning), and pin the C locale so awk number formatting is stable.
export GOFLAGS= GODEBUG= GOGC=100 LC_ALL=C LANG=C

BENCHTIME="${BENCHTIME:-200x}"
PAIRED_BENCHTIME="${PAIRED_BENCHTIME:-1000x}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_ledger.json}"
# The bound is relative, so it tightens every time the epoch hot path
# gets faster: the scratch-reuse and fixed-width codec work cut the
# paired EndEpoch minimum ~4x (84us -> 22us) while the ledger append
# stayed ~1us absolute, which is why the bound is 10% rather than the
# original 5% — the append did not get more expensive, everything
# around it got cheaper.
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-10}"
ATTEMPTS="${ATTEMPTS:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Compile the bench binary once so the measured processes skip the build,
# and fail fast and loudly if the package no longer builds — a broken
# build must read as FAIL, not as a mysteriously empty summary.
if ! go test -run=NONE -c -o /dev/null .; then
  echo "FAIL: benchmark package does not build" >&2
  exit 1
fi

measure() {
  for variant in disabled enabled; do
    go test -run=NONE -bench="^BenchmarkLedgerOverhead/$variant\$" -benchmem \
      -benchtime="$BENCHTIME" -count="$COUNT" . | tee -a "$TMP" >&2
  done
  go test -run=NONE -bench='^BenchmarkLedgerOverhead/paired$' \
    -benchtime="$PAIRED_BENCHTIME" -count="$COUNT" . | tee -a "$TMP" >&2
}

summarize() {
  awk -v benchtime="$BENCHTIME" -v paired="$PAIRED_BENCHTIME" \
      -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" -v goversion="$(go env GOVERSION)" '
  /^BenchmarkLedgerOverhead\/disabled/ { n["d"]++; if (!("d" in min) || $3 < min["d"]) { min["d"] = $3; bytes["d"] = $5; allocs["d"] = $7 } }
  /^BenchmarkLedgerOverhead\/enabled/  { n["e"]++; if (!("e" in min) || $3 < min["e"]) { min["e"] = $3; bytes["e"] = $5; allocs["e"] = $7 } }
  /^BenchmarkLedgerOverhead\/paired/   {
    n["p"]++
    delete row
    for (i = 2; i <= NF; i++) {
      if ($i == "overhead_pct")          { row["p"] = $(i-1) }
      if ($i == "ns_epoch_disabled_min") { row["d"] = $(i-1) }
      if ($i == "ns_epoch_enabled_min")  { row["e"] = $(i-1) }
    }
    if (("p" in row) && (!("p" in min) || row["p"] + 0 < min["p"] + 0)) {
      min["p"] = row["p"]; ep["d"] = row["d"]; ep["e"] = row["e"]
    }
  }
  END {
    if (!("d" in min) || !("e" in min) || !("p" in min)) { print "missing benchmark output" > "/dev/stderr"; exit 1 }
    printf("{\n")
    printf("  \"note\": \"Decision-ledger overhead: full-cycle ns_per_op are minima over %d samples per variant at %s; overhead_pct is the best of %d paired in-process comparisons of minimum EndEpoch latency with and without a ledger (%s interleaved rounds each). Regenerate with scripts/bench_ledger.sh; GATE=1 fails the run when overhead_pct exceeds the bound.\",\n", n["d"], benchtime, n["p"], paired)
    printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"goversion\": \"%s\",\n", goos, goarch, goversion)
    printf("  \"full_cycle_disabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", min["d"], bytes["d"], allocs["d"])
    printf("  \"full_cycle_enabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", min["e"], bytes["e"], allocs["e"])
    printf("  \"paired_epoch\": {\"ns_disabled_min\": %s, \"ns_enabled_min\": %s},\n", ep["d"], ep["e"])
    printf("  \"overhead_pct\": %.2f\n", min["p"])
    printf("}\n")
  }
  ' "$TMP" > "$OUT"
}

attempt=1
while :; do
  measure
  summarize
  echo "wrote $OUT" >&2
  if [[ "${GATE:-0}" == "0" ]]; then
    break
  fi
  overhead="$(awk -F': ' '/"overhead_pct"/ { gsub(/[ ,}]/, "", $2); print $2 }' "$OUT")"
  echo "ledger overhead: ${overhead}% (max ${MAX_OVERHEAD_PCT}%)" >&2
  if awk -v o="$overhead" -v max="$MAX_OVERHEAD_PCT" 'BEGIN { exit (o > max) ? 1 : 0 }'; then
    break
  fi
  if (( attempt >= ATTEMPTS )); then
    echo "FAIL: ledger overhead ${overhead}% exceeds ${MAX_OVERHEAD_PCT}% after ${ATTEMPTS} rounds" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "over the bound; accumulating another round of samples (attempt ${attempt}/${ATTEMPTS})" >&2
done

#!/usr/bin/env bash
# Regenerates BENCH_parallel.json: re-runs the parallel-compute-layer
# benchmarks (exhaustive placement search, weighted k-means) and records
# the numbers next to a frozen pre-parallelization baseline so the
# speedup from memoization + branch-and-bound + sharding stays visible
# in-repo.
#
# Usage: scripts/bench.sh            # writes BENCH_parallel.json
#        BENCHTIME=50x scripts/bench.sh   # steadier numbers, slower
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic benchmark environment: strip ambient Go knobs that skew
# numbers between machines and runs (build flags, debug toggles, GC
# tuning), and pin the C locale so awk number formatting is stable.
export GOFLAGS= GODEBUG= GOGC=100 LC_ALL=C LANG=C

BENCHTIME="${BENCHTIME:-10x}"
OUT="${OUT:-BENCH_parallel.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Fail fast and loudly if the benchmark package no longer builds — a
# broken build must read as FAIL, not as a mysteriously empty summary.
if ! go test -run=NONE -c -o /dev/null .; then
  echo "FAIL: benchmark package does not build" >&2
  exit 1
fi

go test -run=NONE \
  -bench='^(BenchmarkOptimalSearch|BenchmarkOptimalSearchSerial|BenchmarkOptimalSearchParallel|BenchmarkWeightedKMeans|BenchmarkWeightedKMeansParallel)$' \
  -benchmem -benchtime="$BENCHTIME" . | tee "$TMP" >&2

{
cat <<'BASELINE'
{
  "note": "ns_per_op of the parallel compute layer vs the frozen serial seed. Regenerate with scripts/bench.sh; the baseline block is the pre-parallelization implementation (naive per-leaf MeanAccessDelay search, allocating Lloyd loop) and must not be edited.",
  "baseline": {
    "cpu": "Intel(R) Xeon(R) Processor @ 2.10GHz (1 core)",
    "BenchmarkOptimalSearch/k=2": {"ns_per_op": 192282, "bytes_per_op": 664, "allocs_per_op": 6},
    "BenchmarkOptimalSearch/k=3": {"ns_per_op": 1929204, "bytes_per_op": 688, "allocs_per_op": 6},
    "BenchmarkOptimalSearch/k=4": {"ns_per_op": 9205078, "bytes_per_op": 712, "allocs_per_op": 6},
    "BenchmarkWeightedKMeans/points=30": {"ns_per_op": 14843, "bytes_per_op": 6384, "allocs_per_op": 18},
    "BenchmarkWeightedKMeans/points=300": {"ns_per_op": 189172, "bytes_per_op": 16992, "allocs_per_op": 207},
    "BenchmarkWeightedKMeans/points=3000": {"ns_per_op": 1128664, "bytes_per_op": 57504, "allocs_per_op": 99}
  },
BASELINE

echo "  \"benchtime\": \"$BENCHTIME\","
echo "  \"goos\": \"$(go env GOOS)\", \"goarch\": \"$(go env GOARCH)\", \"goversion\": \"$(go env GOVERSION)\","
echo '  "current": {'

awk '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
  ns = ""; bytes = ""; allocs = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns = $(i-1)
    if ($i == "B/op")      bytes = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
  }
  if (ns == "") next
  line = sprintf("    \"%s\": {\"ns_per_op\": %s", name, ns)
  if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
  if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
  line = line "}"
  if (n++) printf(",\n")
  printf("%s", line)
}
END { printf("\n") }
' "$TMP"

echo '  }'
echo '}'
} > "$OUT"

echo "wrote $OUT" >&2

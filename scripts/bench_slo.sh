#!/usr/bin/env bash
# Regenerates BENCH_slo.json and optionally gates on the SLO engine's
# hot-epoch-path overhead: BenchmarkSLOOverhead runs a full manager
# epoch (100 recorded accesses + collect/decide) against a wired
# metrics registry with live SLO evaluation off and on — the enabled
# side also samples the registry into the history ring and evaluates a
# two-objective burn-rate spec, exactly what the daemon sampler and the
# experiment harnesses do once per tick. Sampling is a snapshot into a
# preallocated ring, evaluation is a handful of batched windowed delta
# queries (quiet series answer in O(1)), so the enabled side must stay
# within MAX_OVERHEAD_PCT of disabled.
#
# Defenses against shared-machine noise mirror bench_writepath.sh: the
# variants run in separate processes in ABBA order (disabled, enabled,
# enabled, disabled) so slow-machine drift hits both sides equally; the
# MINIMUM ns/op per variant is compared — scheduler noise only ever
# adds time, so the min is the honest estimate; and a failing gate
# accumulates another round of samples before giving up, since noise
# can make true overhead look bigger but never smaller.
#
# Usage: scripts/bench_slo.sh              # writes BENCH_slo.json
#        GATE=1 scripts/bench_slo.sh       # exit 1 if overhead > 5%
#        COUNT=5 MAX_OVERHEAD_PCT=3 GATE=1 scripts/bench_slo.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic benchmark environment: strip ambient Go knobs that skew
# numbers between machines and runs (build flags, debug toggles, GC
# tuning), and pin the C locale so awk number formatting is stable.
export GOFLAGS= GODEBUG= GOGC=100 LC_ALL=C LANG=C

BENCHTIME="${BENCHTIME:-300x}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_slo.json}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5}"
ATTEMPTS="${ATTEMPTS:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Compile the bench binary once so the measured processes skip the build,
# and fail fast and loudly if the package no longer builds — a broken
# build must read as FAIL, not as a mysteriously empty summary.
if ! go test -run=NONE -c -o /dev/null .; then
  echo "FAIL: benchmark package does not build" >&2
  exit 1
fi

measure() {
  for variant in disabled enabled enabled disabled; do
    go test -run=NONE -bench="^BenchmarkSLOOverhead/$variant\$" -benchmem \
      -benchtime="$BENCHTIME" -count="$COUNT" . | tee -a "$TMP" >&2
  done
}

summarize() {
  awk -v benchtime="$BENCHTIME" -v goos="$(go env GOOS)" \
      -v goarch="$(go env GOARCH)" -v goversion="$(go env GOVERSION)" '
  /^BenchmarkSLOOverhead\/disabled/ { n["d"]++; if (!("d" in min) || $3 < min["d"]) { min["d"] = $3; bytes["d"] = $5; allocs["d"] = $7 } }
  /^BenchmarkSLOOverhead\/enabled/  { n["e"]++; if (!("e" in min) || $3 < min["e"]) { min["e"] = $3; bytes["e"] = $5; allocs["e"] = $7 } }
  END {
    if (!("d" in min) || !("e" in min)) { print "missing benchmark output" > "/dev/stderr"; exit 1 }
    overhead = 100 * (min["e"] - min["d"]) / min["d"]
    printf("{\n")
    printf("  \"note\": \"Live SLO evaluation overhead on the hot epoch path (manager epoch of 100 accesses + collect/decide; enabled adds one history Sample + burn-rate Evaluate per epoch, the daemon/experiment per-tick work): min ns_per_op over %d ABBA-ordered samples per variant at %s. Regenerate with scripts/bench_slo.sh; GATE=1 fails the run when overhead_pct exceeds the bound (default 5).\",\n", n["d"], benchtime)
    printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"goversion\": \"%s\",\n", goos, goarch, goversion)
    printf("  \"disabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", min["d"], bytes["d"], allocs["d"])
    printf("  \"enabled\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", min["e"], bytes["e"], allocs["e"])
    printf("  \"overhead_pct\": %.2f\n", overhead)
    printf("}\n")
  }
  ' "$TMP" > "$OUT"
}

attempt=1
while :; do
  measure
  summarize
  echo "wrote $OUT" >&2
  if [[ "${GATE:-0}" == "0" ]]; then
    break
  fi
  overhead="$(awk -F': ' '/"overhead_pct"/ { gsub(/[ ,}]/, "", $2); print $2 }' "$OUT")"
  echo "slo overhead: ${overhead}% (max ${MAX_OVERHEAD_PCT}%)" >&2
  if awk -v o="$overhead" -v max="$MAX_OVERHEAD_PCT" 'BEGIN { exit (o > max) ? 1 : 0 }'; then
    break
  fi
  if (( attempt >= ATTEMPTS )); then
    echo "FAIL: slo overhead ${overhead}% exceeds ${MAX_OVERHEAD_PCT}% after ${ATTEMPTS} rounds" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "over the bound; accumulating another round of samples (attempt ${attempt}/${ATTEMPTS})" >&2
done

#!/usr/bin/env bash
# Regenerates BENCH_multiobject.json and optionally gates the
# multi-object placement service's amortization claims.
#
# Two figures, two very different noise profiles:
#
#   decision_stage — BenchmarkPerObjectSolve (one full k-means placement
#   solve per object per epoch: the naive loop's decision bill) against
#   BenchmarkGroupDispatch (the service's steady-state dispatch round:
#   signature grouping + drift-skipped solves). Their ns_object ratio is
#   the amortization factor; both run in one process over identical
#   fleet state, so the ratio is stable enough to gate.
#
#   full_epoch — BenchmarkMultiObjectEpoch naive vs amortized at
#   OBJECTS similar objects: the end-to-end epoch tick including summary
#   export, decay, and completion bookkeeping that every design pays.
#   Recorded for context; its ratio is bounded by the data plane, not
#   the decision stage, and shared-machine drift swings it, so it is not
#   gated.
#
# GATE=1 additionally fails the run when:
#   - the steady-state dispatch loop allocates (TestGroupDispatchSteadyStateAllocs), or
#   - the decision-stage amortization factor falls below MIN_AMORT (default 5).
#
# Usage: scripts/bench_multiobject.sh                 # writes BENCH_multiobject.json
#        GATE=1 scripts/bench_multiobject.sh          # gate for CI
#        OBJECTS=1000 BENCHTIME=2x scripts/bench_multiobject.sh   # quicker look
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic benchmark environment: strip ambient Go knobs that skew
# numbers between machines and runs (build flags, debug toggles, GC
# tuning), and pin the C locale so awk number formatting is stable.
export GOFLAGS= GODEBUG= GOGC=100 LC_ALL=C LANG=C

BENCHTIME="${BENCHTIME:-3x}"
STAGE_BENCHTIME="${STAGE_BENCHTIME:-300x}"
OBJECTS="${OBJECTS:-10000}"
OUT="${OUT:-BENCH_multiobject.json}"
MIN_AMORT="${MIN_AMORT:-5}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Fail fast and loudly if either benchmark package no longer builds —
# a broken build must read as FAIL, not as a mysteriously empty summary.
for pkg in . ./internal/placement; do
  if ! go test -run=NONE -c -o /dev/null "$pkg"; then
    echo "FAIL: benchmark package $pkg does not build" >&2
    exit 1
  fi
done

if [[ "${GATE:-0}" != "0" ]]; then
  echo "gate: steady-state dispatch must not allocate" >&2
  if ! go test -run 'TestGroupDispatchSteadyStateAllocs$' ./internal/placement; then
    echo "FAIL: group-solve dispatch loop allocates in steady state" >&2
    exit 1
  fi
fi

go test -run=NONE -bench='^(BenchmarkPerObjectSolve|BenchmarkGroupDispatch)$' \
  -benchmem -benchtime="$STAGE_BENCHTIME" ./internal/placement | tee -a "$TMP" >&2

go test -run=NONE -bench="^BenchmarkMultiObjectEpoch/(naive|amortized)/objects=$OBJECTS\$" \
  -benchtime="$BENCHTIME" . | tee -a "$TMP" >&2

awk -v objects="$OBJECTS" -v benchtime="$BENCHTIME" -v stagetime="$STAGE_BENCHTIME" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" -v goversion="$(go env GOVERSION)" '
function metric(name,   i) {
  for (i = 2; i <= NF; i++) if ($i == name) return $(i-1)
  return ""
}
/^BenchmarkPerObjectSolve\/objects=1000/  { solve = metric("ns_object") }
/^BenchmarkGroupDispatch\/objects=1000/   { dispatch = metric("ns_object"); dallocs = metric("allocs/op") }
/^BenchmarkMultiObjectEpoch\/naive\//     { naive = metric("ns_object") }
/^BenchmarkMultiObjectEpoch\/amortized\// { amort = metric("ns_object"); groups = metric("groups"); solves = metric("solves") }
END {
  if (solve == "" || dispatch == "" || naive == "" || amort == "") {
    print "missing benchmark output" > "/dev/stderr"; exit 1
  }
  printf("{\n")
  printf("  \"note\": \"Multi-object placement amortization. decision_stage compares one k-means placement solve per object per epoch (the naive loop) with the service dispatch round (signature grouping + drift-skipped solves) over identical fleet state at 1000 objects, %s rounds each; amortization_factor is their ns_object ratio and is gated (GATE=1 fails below the bound, plus a zero-alloc check on the dispatch loop). full_epoch is the end-to-end epoch tick at %d similar objects in three demand classes (%s epochs), including the per-object summary export/decay/completion work every design pays; recorded for context, not gated. Regenerate with scripts/bench_multiobject.sh.\",\n", stagetime, objects, benchtime)
  printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"goversion\": \"%s\",\n", goos, goarch, goversion)
  printf("  \"decision_stage\": {\n")
  printf("    \"naive_solve\": {\"ns_per_object\": %s},\n", solve)
  printf("    \"group_dispatch\": {\"ns_per_object\": %s, \"allocs_per_round\": %s},\n", dispatch, dallocs == "" ? "null" : dallocs)
  printf("    \"amortization_factor\": %.1f\n", solve / dispatch)
  printf("  },\n")
  printf("  \"full_epoch\": {\n")
  printf("    \"objects\": %d,\n", objects)
  printf("    \"naive\": {\"ns_per_object\": %s},\n", naive)
  printf("    \"amortized\": {\"ns_per_object\": %s, \"groups\": %s, \"solves\": %s},\n", amort, groups == "" ? "null" : groups, solves == "" ? "null" : solves)
  printf("    \"speedup\": %.2f\n", naive / amort)
  printf("  }\n")
  printf("}\n")
}
' "$TMP" > "$OUT"
echo "wrote $OUT" >&2

if [[ "${GATE:-0}" != "0" ]]; then
  amort="$(awk -F': ' '/"amortization_factor"/ { gsub(/[ ,}]/, "", $2); print $2 }' "$OUT")"
  echo "decision-stage amortization: ${amort}x (min ${MIN_AMORT}x)" >&2
  if ! awk -v a="$amort" -v min="$MIN_AMORT" 'BEGIN { exit (a + 0 >= min + 0) ? 0 : 1 }'; then
    echo "FAIL: amortization factor ${amort} below ${MIN_AMORT}" >&2
    exit 1
  fi
fi

// Integration tests exercising whole-system paths across package
// boundaries: the public API pipeline, the TCP daemon cluster with
// summary collection and object migration over the wire, and grouped
// workload-driven epochs.
package georep_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/georep/georep"
	"github.com/georep/georep/internal/cluster"
	"github.com/georep/georep/internal/coord"
	"github.com/georep/georep/internal/daemon"
	"github.com/georep/georep/internal/replica"
	"github.com/georep/georep/internal/store"
	"github.com/georep/georep/internal/vec"
	"github.com/georep/georep/internal/workload"
)

// TestIntegrationPublicPipeline drives the public API end to end:
// deployment → one-shot placement sanity → manager epochs that improve a
// deliberately bad initial placement.
func TestIntegrationPublicPipeline(t *testing.T) {
	dep, err := georep.Simulate(21, georep.WithNodes(80), georep.WithEmbeddingRounds(150))
	if err != nil {
		t.Fatal(err)
	}
	var candidates, clients []int
	for i := 0; i < dep.Nodes(); i++ {
		if i < 12 {
			candidates = append(candidates, i)
		} else {
			clients = append(clients, i)
		}
	}

	// One-shot: optimal lower-bounds online, online beats random.
	opt, err := dep.Place(georep.StrategyOptimal, georep.PlaceConfig{
		K: 3, Candidates: candidates, Clients: clients, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	on, err := dep.Place(georep.StrategyOnline, georep.PlaceConfig{
		K: 3, Candidates: candidates, Clients: clients, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.MeanDelayMs < opt.MeanDelayMs-1e-9 {
		t.Fatalf("online %v beats optimal %v — objective broken", on.MeanDelayMs, opt.MeanDelayMs)
	}

	// Live manager: pick the WORST initial placement, run epochs, and
	// require the managed placement to close most of the gap to optimal.
	worstReps := candidates[:3]
	worstDelay := -1.0
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			for l := j + 1; l < len(candidates); l++ {
				d, err := dep.MeanAccessDelay(clients, []int{candidates[i], candidates[j], candidates[l]})
				if err != nil {
					t.Fatal(err)
				}
				if d > worstDelay {
					worstDelay = d
					worstReps = []int{candidates[i], candidates[j], candidates[l]}
				}
			}
		}
	}
	mgr, err := dep.NewManager(georep.ManagerConfig{
		K: 3, Candidates: candidates, InitialReplicas: worstReps,
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		for _, c := range clients {
			if _, _, err := mgr.RecordAccess(c, 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mgr.EndEpoch(int64(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	final, err := dep.MeanAccessDelay(clients, mgr.Replicas())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst=%.1f managed=%.1f optimal=%.1f", worstDelay, final, opt.MeanDelayMs)
	if final > worstDelay*0.8 {
		t.Errorf("manager barely improved the worst placement: %v -> %v", worstDelay, final)
	}
	if final > opt.MeanDelayMs*2 {
		t.Errorf("managed placement %v too far from optimal %v", final, opt.MeanDelayMs)
	}
}

// TestIntegrationDaemonCluster runs the networked system: TCP daemons
// with emulated WAN delays, client reads routed by coordinates, summary
// collection over the wire, Algorithm 1 at the coordinator, and object
// migration executed with put/delete RPCs.
func TestIntegrationDaemonCluster(t *testing.T) {
	const timescale = 0.002 // keep the test fast
	dep, err := georep.Simulate(31, georep.WithNodes(14), georep.WithEmbeddingRounds(150))
	if err != nil {
		t.Fatal(err)
	}
	candidates := []int{0, 1, 2, 3}
	var clients []int
	for i := 4; i < dep.Nodes(); i++ {
		clients = append(clients, i)
	}
	coords := make([]coord.Coordinate, dep.Nodes())
	for i := range coords {
		c := dep.Coordinate(i)
		coords[i] = coord.Coordinate{Pos: vec.Vec(c.Pos), Height: c.Height}
	}

	conns := make(map[int]*daemon.Client, len(candidates))
	for _, dc := range candidates {
		dc := dc
		n, err := daemon.NewNode(daemon.Config{
			ID: dc, MicroClusters: 6, Dims: len(coords[dc].Pos),
			Delay: func(client int) time.Duration {
				if client < 0 || client >= dep.Nodes() {
					return 0
				}
				return time.Duration(dep.RTT(client, dc) * timescale * float64(time.Millisecond))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		c, err := daemon.DialNode(n.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		conns[dc] = c
	}

	// Seed the object at the worst candidate pair.
	const obj = "it"
	payload := []byte("integration payload")
	replicas := []int{candidates[0], candidates[1]}
	worst := -1.0
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			d, err := dep.MeanAccessDelay(clients, []int{candidates[i], candidates[j]})
			if err != nil {
				t.Fatal(err)
			}
			if d > worst {
				worst = d
				replicas = []int{candidates[i], candidates[j]}
			}
		}
	}
	for _, dc := range replicas {
		if err := conns[dc].Put(obj, payload, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Clients read via predicted-closest routing; daemons summarize.
	for round := 0; round < 3; round++ {
		for _, cl := range clients {
			best, bestD := replicas[0], math.Inf(1)
			for _, rep := range replicas {
				if d := dep.PredictedRTT(cl, rep); d < bestD {
					best, bestD = rep, d
				}
			}
			resp, rtt, err := conns[best].Get(cl, dep.Coordinate(cl).Pos, obj)
			if err != nil {
				t.Fatal(err)
			}
			if string(resp.Data) != string(payload) {
				t.Fatalf("payload corrupted: %q", resp.Data)
			}
			if rtt <= 0 {
				t.Fatal("no measured RTT")
			}
		}
	}

	// Coordinator: collect over the wire, decide, migrate via RPC.
	var micros []cluster.Micro
	for _, dc := range replicas {
		ms, nbytes, err := conns[dc].Micros()
		if err != nil {
			t.Fatal(err)
		}
		if nbytes <= 0 {
			t.Fatal("summary bytes not accounted")
		}
		micros = append(micros, ms...)
	}
	if len(micros) == 0 {
		t.Fatal("no summaries collected")
	}
	proposed, err := replica.ProposePlacement(rand.New(rand.NewSource(1)), micros, 2, candidates, coords)
	if err != nil {
		t.Fatal(err)
	}
	oldEst, err := replica.EstimateMeanDelay(micros, replicas, coords)
	if err != nil {
		t.Fatal(err)
	}
	newEst, err := replica.EstimateMeanDelay(micros, proposed, coords)
	if err != nil {
		t.Fatal(err)
	}
	if newEst > oldEst+1e-9 {
		t.Fatalf("proposal estimate got worse: %v -> %v", oldEst, newEst)
	}

	ops, err := store.PlanMigration(store.ObjectID(obj), replicas, proposed)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Copy {
			resp, _, err := conns[op.Source].Get(-1, nil, obj)
			if err != nil {
				t.Fatal(err)
			}
			if err := conns[op.Target].Put(obj, resp.Data, resp.Version+1); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := conns[op.Target].Delete(obj); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Exactly the proposed nodes hold the object now.
	inProposed := make(map[int]bool)
	for _, dc := range proposed {
		inProposed[dc] = true
	}
	for _, dc := range candidates {
		st, err := conns[dc].Stats()
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if inProposed[dc] {
			want = 1
		}
		if st.Objects != want {
			t.Errorf("DC %d holds %d objects, want %d", dc, st.Objects, want)
		}
	}

	// Ground truth improved (or held) versus the deliberately bad start.
	after, err := dep.MeanAccessDelay(clients, proposed)
	if err != nil {
		t.Fatal(err)
	}
	if after > worst+1e-9 {
		t.Errorf("migration made ground truth worse: %v -> %v", worst, after)
	}
}

// TestIntegrationGroupedWorkload drives a GroupSet with the workload
// generator: two object groups with different regional audiences end up
// placed differently.
func TestIntegrationGroupedWorkload(t *testing.T) {
	dep, err := georep.Simulate(41, georep.WithNodes(60), georep.WithEmbeddingRounds(150))
	if err != nil {
		t.Fatal(err)
	}
	var candidates, clients []int
	for i := 0; i < dep.Nodes(); i++ {
		if i < 10 {
			candidates = append(candidates, i)
		} else {
			clients = append(clients, i)
		}
	}
	// Audience A = clients closest to anchor clients[0]; audience B =
	// the rest (split by predicted RTT).
	anchor := clients[0]
	var audienceA, audienceB []int
	for _, c := range clients {
		if dep.PredictedRTT(c, anchor) < 80 {
			audienceA = append(audienceA, c)
		} else {
			audienceB = append(audienceB, c)
		}
	}
	if len(audienceA) < 5 || len(audienceB) < 5 {
		t.Skipf("degenerate audience split %d/%d", len(audienceA), len(audienceB))
	}

	gs, err := dep.NewGroupSet(georep.ManagerConfig{K: 2, Candidates: candidates})
	if err != nil {
		t.Fatal(err)
	}
	specA, err := workload.UniformClients(audienceA, nil)
	if err != nil {
		t.Fatal(err)
	}
	specB, err := workload.UniformClients(audienceB, nil)
	if err != nil {
		t.Fatal(err)
	}
	genA, err := workload.NewGenerator(rand.New(rand.NewSource(1)), workload.Spec{
		Clients: specA, Objects: 5, ZipfExponent: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	genB, err := workload.NewGenerator(rand.New(rand.NewSource(2)), workload.Spec{
		Clients: specB, Objects: 5, ZipfExponent: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for epoch := 0; epoch < 2; epoch++ {
		aAccesses, err := genA.Epoch(rng, 300, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range aAccesses {
			if _, _, err := gs.RecordAccess("group-a", a.Client, a.Bytes); err != nil {
				t.Fatal(err)
			}
		}
		bAccesses, err := genB.Epoch(rng, 300, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range bAccesses {
			if _, _, err := gs.RecordAccess("group-b", a.Client, a.Bytes); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := gs.EndEpoch(int64(epoch)); err != nil {
			t.Fatal(err)
		}
	}

	repsA, err := gs.Replicas("group-a")
	if err != nil {
		t.Fatal(err)
	}
	repsB, err := gs.Replicas("group-b")
	if err != nil {
		t.Fatal(err)
	}
	// Each group's placement should serve its own audience at least as
	// well as it serves the other group's audience.
	aOwn, err := dep.MeanAccessDelay(audienceA, repsA)
	if err != nil {
		t.Fatal(err)
	}
	aCross, err := dep.MeanAccessDelay(audienceA, repsB)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("audience A: own placement %.1f ms, other group's %.1f ms (repsA=%v repsB=%v)",
		aOwn, aCross, repsA, repsB)
	if aOwn > aCross*1.25 {
		t.Errorf("group-a placement (%v ms) much worse for its audience than group-b's (%v ms)",
			aOwn, aCross)
	}
}
